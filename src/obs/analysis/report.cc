#include "obs/analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/analysis/decision_audit.h"
#include "obs/analysis/json_value.h"
#include "obs/analysis/round_health.h"
#include "obs/json_util.h"

namespace fedmp::obs::analysis {

namespace {

// One wall-clock phase aggregated from the Chrome trace ("X" events).
struct PhaseStat {
  std::string name;
  double total_ms = 0.0;
  int64_t count = 0;
};

std::vector<PhaseStat> PhasesFromChromeTrace(const JsonValue& trace) {
  std::map<std::string, PhaseStat> by_name;
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) return {};
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->StringOr("") != "X") continue;
    const JsonValue* name = e.Find("name");
    const JsonValue* dur = e.Find("dur");
    if (name == nullptr || dur == nullptr) continue;
    PhaseStat& stat = by_name[name->StringOr("?")];
    stat.name = name->StringOr("?");
    stat.total_ms += dur->NumberOr(0.0) / 1000.0;
    ++stat.count;
  }
  std::vector<PhaseStat> out;
  for (auto& [name, stat] : by_name) out.push_back(stat);
  std::sort(out.begin(), out.end(), [](const PhaseStat& a, const PhaseStat& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

// Counter values (flat numeric entries of the metrics snapshot).
std::map<std::string, double> CountersFromMetrics(const JsonValue& metrics) {
  std::map<std::string, double> out;
  if (!metrics.is_object()) return out;
  for (const auto& [name, value] : metrics.object) {
    if (value.is_number()) out[name] = value.number;
  }
  return out;
}

struct HitRate {
  std::string name;
  double hits = 0.0, misses = 0.0;
  double rate = 0.0;
};

std::vector<HitRate> HitRatesFromCounters(
    const std::map<std::string, double>& counters) {
  std::vector<HitRate> out;
  for (const auto& [name, value] : counters) {
    const std::string suffix = ".hits";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - suffix.size());
    const auto misses = counters.find(base + ".misses");
    if (misses == counters.end()) continue;
    HitRate rate;
    rate.name = base;
    rate.hits = value;
    rate.misses = misses->second;
    const double total = rate.hits + rate.misses;
    rate.rate = total > 0.0 ? rate.hits / total : 0.0;
    out.push_back(rate);
  }
  return out;
}

// One round's resource-ledger rollup reconstructed from a `resource` event
// (obs/ledger.h). Pure function of the logical event stream, so the section
// is part of the deterministic report: bit-identical across thread counts
// and shard counts.
struct ResourceRound {
  int64_t round = -1;
  int64_t workers = 0;
  int64_t flops_fwd = 0;
  int64_t flops_bwd = 0;
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  int64_t bytes_residual = 0;
  int64_t dense_flops = 0;
  int64_t dense_bytes = 0;
  int64_t rows = 0;
};

std::vector<ResourceRound> ResourcesFromEvents(
    const std::vector<JsonValue>& events) {
  std::vector<ResourceRound> out;
  for (const JsonValue& e : events) {
    const JsonValue* name = e.Find("event");
    if (name == nullptr || name->StringOr("") != "resource") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr || !args->is_object()) continue;
    ResourceRound r;
    auto read = [&](const char* key, int64_t* field) {
      if (const JsonValue* v = args->Find(key)) *field = v->IntOr(0);
    };
    read("round", &r.round);
    read("workers", &r.workers);
    read("flops_fwd", &r.flops_fwd);
    read("flops_bwd", &r.flops_bwd);
    read("bytes_up", &r.bytes_up);
    read("bytes_down", &r.bytes_down);
    read("bytes_residual", &r.bytes_residual);
    read("dense_flops", &r.dense_flops);
    read("dense_bytes", &r.dense_bytes);
    read("rows", &r.rows);
    out.push_back(r);
  }
  return out;
}

double SavedRatio(int64_t used, int64_t dense) {
  if (dense <= 0) return 0.0;
  return 1.0 - static_cast<double>(used) / static_cast<double>(dense);
}

// One watchdog alert reconstructed from an `obs.alert` event. Only
// deterministic-rule alerts reach the events JSONL (environment rules are
// Chrome-trace-only), so this section is part of the deterministic report.
struct AlertRecord {
  std::string rule;
  int64_t round = -1;
  std::string detail;
  double value = 0.0;
  double threshold = 0.0;
  int fog = -1;
};

std::vector<AlertRecord> AlertsFromEvents(const std::vector<JsonValue>& events) {
  std::vector<AlertRecord> out;
  for (const JsonValue& e : events) {
    const JsonValue* name = e.Find("event");
    if (name == nullptr || name->StringOr("") != "obs.alert") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr || !args->is_object()) continue;
    AlertRecord alert;
    if (const JsonValue* v = args->Find("rule")) alert.rule = v->StringOr("?");
    if (const JsonValue* v = args->Find("round")) alert.round = v->IntOr(-1);
    if (const JsonValue* v = args->Find("detail")) {
      alert.detail = v->StringOr("");
    }
    if (const JsonValue* v = args->Find("value")) {
      alert.value = v->NumberOr(0.0);
    }
    if (const JsonValue* v = args->Find("threshold")) {
      alert.threshold = v->NumberOr(0.0);
    }
    if (const JsonValue* v = args->Find("fog")) {
      alert.fog = static_cast<int>(v->IntOr(-1));
    }
    out.push_back(std::move(alert));
  }
  return out;
}

}  // namespace

Report BuildReport(const ReportInputs& inputs, const ReportOptions& options) {
  Report report;
  std::string human;
  std::string json = "{\"schema\":\"fedmp_report/1\"";
  json += ",\"deterministic_only\":";
  json += options.deterministic_only ? "true" : "false";
  char buf[192];

  human += "== FedMP run report ==\n";

  // --- Manifest (environment-dependent: sha, host, threads, toggles). ---
  if (!options.deterministic_only) {
    json += ",\"manifest\":";
    JsonValue manifest;
    std::string error;
    if (!inputs.manifest_json.empty() &&
        ParseJson(inputs.manifest_json, &manifest, &error)) {
      human += "\nManifest\n";
      const JsonValue* info = manifest.Find("run_info");
      if (info != nullptr && info->is_object()) {
        for (const auto& [key, value] : info->object) {
          std::string rendered;
          switch (value.kind) {
            case JsonValue::Kind::kString: rendered = value.string; break;
            case JsonValue::Kind::kNumber:
              std::snprintf(buf, sizeof(buf), "%g", value.number);
              rendered = buf;
              break;
            case JsonValue::Kind::kBool:
              rendered = value.boolean ? "true" : "false";
              break;
            default: rendered = "null";
          }
          human += "  " + key + ": " + rendered + "\n";
        }
      }
      // Re-serialize verbatim into the JSON report.
      std::string trimmed = inputs.manifest_json;
      while (!trimmed.empty() &&
             (trimmed.back() == '\n' || trimmed.back() == '\r')) {
        trimmed.pop_back();
      }
      json += trimmed;
    } else {
      if (!inputs.manifest_json.empty()) {
        report.warnings.push_back("manifest: " + error);
      }
      json += "null";
    }
  }

  // --- Deterministic sections from the events JSONL. ---
  std::vector<JsonValue> events;
  if (!inputs.events_jsonl.empty()) {
    std::string error;
    if (!ParseJsonLines(inputs.events_jsonl, &events, &error)) {
      report.warnings.push_back("events: " + error);
      events.clear();
    }
  } else {
    report.warnings.push_back("events: no events JSONL provided");
  }

  const std::vector<RoundHealth> health = HealthFromEvents(events);
  human += "\n" + RenderRoundHealthTable(health);
  json += ",\"round_health\":" + RoundHealthJson(health);

  const std::vector<DecisionRecord> decisions = DecisionsFromEvents(events);
  human += "\n" + RenderDecisionTable(decisions);
  json += ",\"decision_audit\":" + DecisionAuditJson(decisions);

  // Resource ledger (deterministic: `resource` events are exact integer
  // rollups of the round plan). Integer fields are serialized via
  // to_string so 64-bit totals round-trip exactly through the report.
  const std::vector<ResourceRound> resources = ResourcesFromEvents(events);
  {
    ResourceRound tot;
    tot.round = static_cast<int64_t>(resources.size());
    for (const ResourceRound& r : resources) {
      tot.workers += r.workers;
      tot.flops_fwd += r.flops_fwd;
      tot.flops_bwd += r.flops_bwd;
      tot.bytes_up += r.bytes_up;
      tot.bytes_down += r.bytes_down;
      tot.bytes_residual += r.bytes_residual;
      tot.dense_flops += r.dense_flops;
      tot.dense_bytes += r.dense_bytes;
      tot.rows += r.rows;
    }
    const int64_t tot_flops = tot.flops_fwd + tot.flops_bwd;
    const int64_t tot_wire = tot.bytes_up + tot.bytes_down;
    human += "\nResources (" + std::to_string(resources.size()) + " rounds)\n";
    human += "  round   workers       flops_total          bytes_up"
             "        bytes_down  saved_b  saved_f\n";
    for (const ResourceRound& r : resources) {
      std::snprintf(buf, sizeof(buf),
                    "  %5lld  %8lld  %16lld  %16lld  %16lld  %6.1f%%  %6.1f%%\n",
                    static_cast<long long>(r.round),
                    static_cast<long long>(r.workers),
                    static_cast<long long>(r.flops_fwd + r.flops_bwd),
                    static_cast<long long>(r.bytes_up),
                    static_cast<long long>(r.bytes_down),
                    SavedRatio(r.bytes_up + r.bytes_down, r.dense_bytes) * 100.0,
                    SavedRatio(r.flops_fwd + r.flops_bwd, r.dense_flops) *
                        100.0);
      human += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  total  %8lld  %16lld  %16lld  %16lld  %6.1f%%  %6.1f%%\n",
                  static_cast<long long>(tot.workers),
                  static_cast<long long>(tot_flops),
                  static_cast<long long>(tot.bytes_up),
                  static_cast<long long>(tot.bytes_down),
                  SavedRatio(tot_wire, tot.dense_bytes) * 100.0,
                  SavedRatio(tot_flops, tot.dense_flops) * 100.0);
    human += buf;

    auto resource_json = [](const ResourceRound& r, int64_t flops,
                            int64_t wire) {
      std::string j = "{";
      j += "\"workers\":" + std::to_string(r.workers);
      j += ",\"flops_fwd\":" + std::to_string(r.flops_fwd);
      j += ",\"flops_bwd\":" + std::to_string(r.flops_bwd);
      j += ",\"flops_total\":" + std::to_string(flops);
      j += ",\"bytes_up\":" + std::to_string(r.bytes_up);
      j += ",\"bytes_down\":" + std::to_string(r.bytes_down);
      j += ",\"bytes_residual\":" + std::to_string(r.bytes_residual);
      j += ",\"dense_flops\":" + std::to_string(r.dense_flops);
      j += ",\"dense_bytes\":" + std::to_string(r.dense_bytes);
      j += ",\"rows\":" + std::to_string(r.rows);
      j += ",\"bytes_saved_ratio\":" +
           JsonNumber(SavedRatio(wire, r.dense_bytes), 6);
      j += ",\"flops_saved_ratio\":" +
           JsonNumber(SavedRatio(flops, r.dense_flops), 6);
      j += "}";
      return j;
    };
    json += ",\"resources\":{\"rounds\":" + std::to_string(resources.size());
    json += ",\"totals\":" + resource_json(tot, tot_flops, tot_wire);
    json += ",\"per_round\":[";
    for (size_t r = 0; r < resources.size(); ++r) {
      if (r > 0) json += ",";
      const ResourceRound& rr = resources[r];
      json += "{\"round\":" + std::to_string(rr.round) +
              ",\"data\":" + resource_json(rr, rr.flops_fwd + rr.flops_bwd,
                                           rr.bytes_up + rr.bytes_down) +
              "}";
    }
    json += "]}";
  }

  // Watchdog alerts (deterministic — only logical-rule alerts are in the
  // events JSONL). Always present, so `--diff` can compare alert counts
  // between a clean run and a degraded one without schema branching.
  const std::vector<AlertRecord> alerts = AlertsFromEvents(events);
  human += "\nAlerts (" + std::to_string(alerts.size()) + ")\n";
  std::map<std::string, int64_t> alerts_by_rule;
  for (const AlertRecord& a : alerts) ++alerts_by_rule[a.rule];
  json += ",\"alerts\":{\"count\":" + std::to_string(alerts.size());
  json += ",\"by_rule\":{";
  {
    bool first = true;
    for (const auto& [rule, count] : alerts_by_rule) {
      if (!first) json += ",";
      first = false;
      json += "\"" + JsonEscape(rule) + "\":" + std::to_string(count);
    }
  }
  json += "},\"items\":[";
  for (size_t a = 0; a < alerts.size(); ++a) {
    const AlertRecord& alert = alerts[a];
    std::snprintf(buf, sizeof(buf), "  round %5lld  %-20s %s\n",
                  static_cast<long long>(alert.round), alert.rule.c_str(),
                  alert.detail.c_str());
    human += buf;
    if (a > 0) json += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"rule\":\"%s\",\"round\":%lld,\"value\":%s,"
                  "\"threshold\":%s,\"fog\":%d,\"detail\":\"",
                  JsonEscape(alert.rule).c_str(),
                  static_cast<long long>(alert.round),
                  JsonNumber(alert.value, 6).c_str(),
                  JsonNumber(alert.threshold, 6).c_str(), alert.fog);
    json += buf;
    json += JsonEscape(alert.detail) + "\"}";
  }
  json += "]}";

  // --- Environment-dependent sections. ---
  if (!options.deterministic_only) {
    // Cache/pool counters and derived hit rates.
    json += ",\"counters\":";
    JsonValue metrics;
    std::string error;
    if (!inputs.metrics_json.empty() &&
        ParseJson(inputs.metrics_json, &metrics, &error)) {
      const auto counters = CountersFromMetrics(metrics);
      const auto rates = HitRatesFromCounters(counters);
      human += "\nCounters\n";
      json += "{";
      bool first = true;
      for (const auto& [name, value] : counters) {
        std::snprintf(buf, sizeof(buf), "  %-42s %14.6g\n", name.c_str(),
                      value);
        human += buf;
        if (!first) json += ",";
        first = false;
        json += "\"" + JsonEscape(name) + "\":" + JsonNumber(value, 6);
      }
      json += "},\"hit_rates\":{";
      human += "\nCache hit rates\n";
      first = true;
      for (const HitRate& rate : rates) {
        std::snprintf(buf, sizeof(buf),
                      "  %-32s %6.1f%%  (%g hits / %g misses)\n",
                      rate.name.c_str(), rate.rate * 100.0, rate.hits,
                      rate.misses);
        human += buf;
        if (!first) json += ",";
        first = false;
        json += "\"" + JsonEscape(rate.name) + "\":" + JsonNumber(rate.rate, 6);
      }
      json += "}";
    } else {
      if (!inputs.metrics_json.empty()) {
        report.warnings.push_back("metrics: " + error);
      }
      json += "null,\"hit_rates\":null";
    }

    // Wall-clock phase breakdown from the Chrome trace.
    json += ",\"phases\":";
    JsonValue trace;
    if (!inputs.chrome_trace_json.empty() &&
        ParseJson(inputs.chrome_trace_json, &trace, &error)) {
      const std::vector<PhaseStat> phases = PhasesFromChromeTrace(trace);
      human += "\nWall-clock phase breakdown (host time, thread-dependent)\n";
      human += "  phase            total_ms     count\n";
      json += "[";
      for (size_t p = 0; p < phases.size(); ++p) {
        std::snprintf(buf, sizeof(buf), "  %-15s %9.3f  %8lld\n",
                      phases[p].name.c_str(), phases[p].total_ms,
                      static_cast<long long>(phases[p].count));
        human += buf;
        if (p > 0) json += ",";
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"total_ms\":%s,\"count\":%lld}",
                      JsonEscape(phases[p].name).c_str(),
                      JsonNumber(phases[p].total_ms, 3).c_str(),
                      static_cast<long long>(phases[p].count));
        json += buf;
      }
      json += "]";
    } else {
      if (!inputs.chrome_trace_json.empty()) {
        report.warnings.push_back("trace: " + error);
      }
      json += "null";
    }

    // Round log tail: the experiment-level metrics for quick inspection —
    // also exported as "last_round" JSON so --diff can compare accuracy and
    // round counts between two runs.
    std::vector<JsonValue> rounds;
    if (!inputs.rounds_jsonl.empty() &&
        ParseJsonLines(inputs.rounds_jsonl, &rounds, &error)) {
      human += "\nRound log (last round)\n";
      json += ",\"rounds_total\":" + std::to_string(rounds.size());
      json += ",\"last_round\":{";
      bool first = true;
      if (!rounds.empty() && rounds.back().is_object()) {
        for (const auto& [key, value] : rounds.back().object) {
          if (!value.is_number()) continue;
          std::snprintf(buf, sizeof(buf), "  %-24s %12.6g\n", key.c_str(),
                        value.number);
          human += buf;
          if (!first) json += ",";
          first = false;
          json += "\"" + JsonEscape(key) + "\":" + JsonNumber(value.number, 6);
        }
      }
      json += "}";
    } else if (!inputs.rounds_jsonl.empty()) {
      report.warnings.push_back("rounds: " + error);
    }
  }

  json += "}";
  report.human = std::move(human);
  report.json = std::move(json);
  return report;
}

}  // namespace fedmp::obs::analysis
