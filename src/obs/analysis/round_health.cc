#include "obs/analysis/round_health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json_util.h"

namespace fedmp::obs::analysis {

RoundHealth SummarizeRound(int64_t round, std::vector<WorkerTiming> workers) {
  std::sort(workers.begin(), workers.end(),
            [](const WorkerTiming& a, const WorkerTiming& b) {
              return a.worker < b.worker;
            });
  RoundHealth health;
  health.round = round;
  double sum = 0.0;
  for (const WorkerTiming& w : workers) {
    if (!w.survived || w.completion_s < 0.0) continue;
    ++health.survivors;
    sum += w.completion_s;
    if (w.completion_s > health.critical_total_s) {
      health.critical_worker = w.worker;
      health.critical_fog = w.fog;
      health.critical_comp_s = w.comp_s;
      health.critical_comm_s = w.comm_s;
      health.critical_total_s = w.completion_s;
    }
  }
  if (health.survivors > 0) {
    health.mean_completion_s = sum / static_cast<double>(health.survivors);
    std::vector<double> completions;
    completions.reserve(static_cast<size_t>(health.survivors));
    for (const WorkerTiming& w : workers) {
      if (!w.survived || w.completion_s < 0.0) continue;
      health.straggler_gap_max =
          std::max(health.straggler_gap_max,
                   std::fabs(w.completion_s - health.mean_completion_s));
      completions.push_back(w.completion_s);
    }
    std::sort(completions.begin(), completions.end());
    const size_t n = completions.size();
    health.median_completion_s =
        n % 2 == 1 ? completions[n / 2]
                   : 0.5 * (completions[n / 2 - 1] + completions[n / 2]);
  }
  health.workers = std::move(workers);
  return health;
}

int StragglerArgmax(const RoundHealth& health) {
  int worker = -1;
  double best = -1.0;
  for (const WorkerTiming& w : health.workers) {
    if (!w.survived || w.completion_s < 0.0) continue;
    const double gap = std::fabs(w.completion_s - health.mean_completion_s);
    if (gap > best) {
      best = gap;
      worker = w.worker;
    }
  }
  return worker;
}

namespace {

// Exact aggregates carried by a `round_rollup` event: present whenever the
// emitting trainer sampled the per-worker stream.
struct Rollup {
  int survivors = -1;
  double mean = -1.0;
  double median = -1.0;
  double gap = -1.0;
};

}  // namespace

std::vector<RoundHealth> HealthFromEvents(
    const std::vector<JsonValue>& events) {
  std::map<int64_t, std::vector<WorkerTiming>> by_round;
  std::map<int64_t, Rollup> rollups;
  for (const JsonValue& e : events) {
    const JsonValue* name = e.Find("event");
    if (name == nullptr) continue;
    if (name->StringOr("") == "round_rollup") {
      const JsonValue* args = e.Find("args");
      if (args == nullptr || !args->is_object()) continue;
      const int64_t round =
          args->Find("round") ? args->Find("round")->IntOr(-1) : -1;
      if (round < 0) continue;
      Rollup& rollup = rollups[round];
      if (const JsonValue* v = args->Find("survivors")) {
        rollup.survivors = static_cast<int>(v->IntOr(-1));
      }
      if (const JsonValue* v = args->Find("mean_completion_s")) {
        rollup.mean = v->NumberOr(-1.0);
      }
      if (const JsonValue* v = args->Find("median_completion_s")) {
        rollup.median = v->NumberOr(-1.0);
      }
      if (const JsonValue* v = args->Find("straggler_gap_max")) {
        rollup.gap = v->NumberOr(-1.0);
      }
      // Ensure the round appears even if every worker event was sampled out.
      by_round[round];
      continue;
    }
    if (name->StringOr("") != "worker_timing") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr || !args->is_object()) continue;
    WorkerTiming timing;
    timing.worker = static_cast<int>(
        args->Find("worker") ? args->Find("worker")->IntOr(-1) : -1);
    const int64_t round =
        args->Find("round") ? args->Find("round")->IntOr(-1) : -1;
    if (timing.worker < 0 || round < 0) continue;
    if (const JsonValue* v = args->Find("comp_s")) timing.comp_s = v->NumberOr(0.0);
    if (const JsonValue* v = args->Find("comm_s")) timing.comm_s = v->NumberOr(0.0);
    if (const JsonValue* v = args->Find("completion_s")) {
      timing.completion_s = v->NumberOr(-1.0);
    }
    if (const JsonValue* v = args->Find("ratio")) timing.ratio = v->NumberOr(0.0);
    if (const JsonValue* v = args->Find("survived")) {
      timing.survived = v->IntOr(0) != 0;
    }
    // Optional: only emitted by hierarchical rounds (older event streams
    // and flat rounds keep the -1 default).
    if (const JsonValue* v = args->Find("fog")) {
      timing.fog = static_cast<int>(v->IntOr(-1));
    }
    by_round[round].push_back(timing);
  }
  std::vector<RoundHealth> out;
  out.reserve(by_round.size());
  for (auto& [round, workers] : by_round) {
    RoundHealth health = SummarizeRound(round, std::move(workers));
    auto it = rollups.find(round);
    if (it != rollups.end()) {
      // The rollup saw every worker; the sampled subset did not. Critical
      // worker/fog stay as computed — the trainers force the critical and
      // max-gap workers into the emitted subset, so those fields are exact.
      if (it->second.survivors >= 0) health.survivors = it->second.survivors;
      if (it->second.mean >= 0.0) health.mean_completion_s = it->second.mean;
      if (it->second.median >= 0.0) {
        health.median_completion_s = it->second.median;
      }
      if (it->second.gap >= 0.0) health.straggler_gap_max = it->second.gap;
    }
    out.push_back(std::move(health));
  }
  return out;
}

std::string RenderRoundHealthTable(const std::vector<RoundHealth>& rounds) {
  std::string out;
  char buf[192];
  out += "Round health (simulated time, critical path = slowest survivor)\n";
  out +=
      "  round  crit.worker  crit.fog  crit.comp_s  crit.comm_s  crit.total_s"
      "  mean_s  median_s    gap_max  survivors\n";
  for (const RoundHealth& h : rounds) {
    std::snprintf(buf, sizeof(buf),
                  "  %5lld  %11d  %8d  %11.4f  %11.4f  %12.4f  %6.4f  %8.4f"
                  "  %9.4f  %9d\n",
                  static_cast<long long>(h.round), h.critical_worker,
                  h.critical_fog, h.critical_comp_s, h.critical_comm_s,
                  h.critical_total_s, h.mean_completion_s,
                  h.median_completion_s, h.straggler_gap_max, h.survivors);
    out += buf;
  }

  // Straggler attribution: which workers keep landing on the critical path
  // and how far each sits from the round mean on average.
  std::map<int, int> critical_rounds;
  std::map<int, double> gap_sum;
  std::map<int, int> gap_count;
  for (const RoundHealth& h : rounds) {
    if (h.critical_worker >= 0) ++critical_rounds[h.critical_worker];
    for (const WorkerTiming& w : h.workers) {
      if (!w.survived || w.completion_s < 0.0) continue;
      gap_sum[w.worker] += w.completion_s - h.mean_completion_s;
      ++gap_count[w.worker];
    }
  }
  out += "\nStraggler attribution (per worker)\n";
  out += "  worker  critical_rounds  mean_gap_s\n";
  for (const auto& [worker, count] : gap_count) {
    std::snprintf(buf, sizeof(buf), "  %6d  %15d  %10.4f\n", worker,
                  critical_rounds.count(worker) ? critical_rounds[worker] : 0,
                  gap_sum[worker] / static_cast<double>(count));
    out += buf;
  }
  return out;
}

std::string RoundHealthJson(const std::vector<RoundHealth>& rounds) {
  std::string out = "[";
  char buf[384];
  for (size_t r = 0; r < rounds.size(); ++r) {
    const RoundHealth& h = rounds[r];
    if (r > 0) out += ",";
    std::snprintf(
        buf, sizeof(buf),
        "{\"round\":%lld,\"critical_worker\":%d,\"critical_fog\":%d,"
        "\"critical_comp_s\":%s,"
        "\"critical_comm_s\":%s,\"critical_total_s\":%s,"
        "\"mean_completion_s\":%s,\"median_completion_s\":%s,"
        "\"straggler_gap_max\":%s,\"survivors\":%d,"
        "\"workers\":[",
        static_cast<long long>(h.round), h.critical_worker, h.critical_fog,
        JsonNumber(h.critical_comp_s, 6).c_str(),
        JsonNumber(h.critical_comm_s, 6).c_str(),
        JsonNumber(h.critical_total_s, 6).c_str(),
        JsonNumber(h.mean_completion_s, 6).c_str(),
        JsonNumber(h.median_completion_s, 6).c_str(),
        JsonNumber(h.straggler_gap_max, 6).c_str(), h.survivors);
    out += buf;
    for (size_t w = 0; w < h.workers.size(); ++w) {
      const WorkerTiming& t = h.workers[w];
      if (w > 0) out += ",";
      std::snprintf(buf, sizeof(buf),
                    "{\"worker\":%d,\"fog\":%d,\"comp_s\":%s,\"comm_s\":%s,"
                    "\"completion_s\":%s,\"ratio\":%s,\"survived\":%s}",
                    t.worker, t.fog, JsonNumber(t.comp_s, 6).c_str(),
                    JsonNumber(t.comm_s, 6).c_str(),
                    JsonNumber(t.completion_s, 6).c_str(),
                    JsonNumber(t.ratio, 6).c_str(),
                    t.survived ? "true" : "false");
      out += buf;
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace fedmp::obs::analysis
