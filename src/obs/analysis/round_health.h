#ifndef FEDMP_OBS_ANALYSIS_ROUND_HEALTH_H_
#define FEDMP_OBS_ANALYSIS_ROUND_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/json_value.h"

// Per-round critical-path and straggler attribution over the simulated
// per-worker timings. Two entry points share the same math:
//   * in-process — the trainers call SummarizeRound() on the timing vectors
//     they already computed and fold the result into the RoundRecord;
//   * post-hoc — HealthFromEvents() rebuilds the same records from the
//     `worker_timing` instant events in the deterministic events JSONL.
// Both run on simulated (logical) time only, so the output is bit-identical
// across thread counts.
namespace fedmp::obs::analysis {

// One worker's simulated timings within one round.
struct WorkerTiming {
  int worker = -1;
  double comp_s = 0.0;        // local-training compute seconds (Eq. 5)
  double comm_s = 0.0;        // down+uplink transmit seconds
  double completion_s = 0.0;  // total incl. fault slowdown; < 0 when the
                              // upload never reached the PS
  double ratio = 0.0;         // pruning ratio the worker executed
  bool survived = false;      // arrival accepted within the round's deadline
  int fog = -1;               // regional aggregator the worker uploads to;
                              // -1 when the round ran the flat topology
};

struct RoundHealth {
  int64_t round = 0;
  // The slowest surviving worker: the round's critical path runs through
  // its prune -> train -> transmit chain.
  int critical_worker = -1;
  // Fog tier of the critical worker (-1 under the flat topology): at scale
  // the actionable question is which REGION the round waited on, not just
  // which worker.
  int critical_fog = -1;
  double critical_comp_s = 0.0;
  double critical_comm_s = 0.0;
  double critical_total_s = 0.0;
  // Mean completion time over survivors (the Eq. 8 reward denominator's
  // reference point) and the largest |T_n - mean(T)| straggler gap.
  double mean_completion_s = 0.0;
  double straggler_gap_max = 0.0;
  // Median survivor completion time — the watchdog's straggler rule
  // compares the gap against a multiple of this (the mean is itself pulled
  // by the straggler, the median is not).
  double median_completion_s = 0.0;
  int survivors = 0;
  std::vector<WorkerTiming> workers;  // sorted by worker id
};

// Folds one round's worker timings into a health record.
RoundHealth SummarizeRound(int64_t round, std::vector<WorkerTiming> workers);

// The survivor realizing straggler_gap_max (largest |T_n - mean|), or -1
// when the round had no survivors. Under trace sampling the trainers force
// this worker's events into the per-round emission set alongside the
// critical worker.
int StragglerArgmax(const RoundHealth& health);

// Rebuilds per-round health from parsed events-JSONL lines (the
// `worker_timing` instant events both trainers emit). When a round also
// carries a `round_rollup` event (emitted whenever trace sampling thins the
// per-worker stream), its aggregate fields — survivors, mean, median,
// straggler gap — override the values recomputed from the sampled subset,
// so the table stays exact even though most workers are folded out. Rounds
// are returned in ascending order.
std::vector<RoundHealth> HealthFromEvents(
    const std::vector<JsonValue>& events);

// Renders health records as an aligned text table (one row per round) plus
// a per-worker straggler-attribution summary (rounds on the critical path,
// mean gap to the round mean).
std::string RenderRoundHealthTable(const std::vector<RoundHealth>& rounds);

// The health records as a JSON array (deterministic: fixed formatting).
std::string RoundHealthJson(const std::vector<RoundHealth>& rounds);

}  // namespace fedmp::obs::analysis

#endif  // FEDMP_OBS_ANALYSIS_ROUND_HEALTH_H_
