#include "obs/analysis/decision_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json_util.h"

namespace fedmp::obs::analysis {

namespace {

double NumArg(const JsonValue& args, const char* key, double fallback) {
  const JsonValue* v = args.Find(key);
  return v != nullptr ? v->NumberOr(fallback) : fallback;
}

}  // namespace

std::vector<DecisionRecord> DecisionsFromEvents(
    const std::vector<JsonValue>& events) {
  // Selects and rewards are paired by per-worker order: the strategy always
  // emits one eucb_reward for each eucb_select of the same worker (crashed
  // workers observe a zero reward rather than none).
  std::map<int, std::vector<size_t>> select_order;  // worker -> record index
  std::map<int, size_t> rewards_seen;
  std::vector<DecisionRecord> out;
  for (const JsonValue& e : events) {
    const JsonValue* name = e.Find("event");
    const JsonValue* args = e.Find("args");
    if (name == nullptr || args == nullptr || !args->is_object()) continue;
    const std::string kind = name->StringOr("");
    if (kind == "eucb_select") {
      DecisionRecord rec;
      rec.worker = static_cast<int>(NumArg(*args, "worker", -1));
      if (rec.worker < 0) continue;
      rec.pull = static_cast<int>(select_order[rec.worker].size());
      rec.arm_ratio = NumArg(*args, "arm_ratio", NumArg(*args, "ratio", 0.0));
      rec.executed_ratio = NumArg(*args, "ratio", rec.arm_ratio);
      rec.leaf_lo = NumArg(*args, "leaf_lo", 0.0);
      rec.leaf_hi = NumArg(*args, "leaf_hi", 0.0);
      rec.count = NumArg(*args, "count", 0.0);
      rec.mean = NumArg(*args, "mean", 0.0);
      rec.total = NumArg(*args, "total", 0.0);
      rec.exploration_coef = NumArg(*args, "coef", 0.0);
      rec.depth = static_cast<int>(NumArg(*args, "depth", 0));
      rec.leaves = static_cast<int>(NumArg(*args, "leaves", 0));
      // A never-pulled leaf has infinite padding/UCB; the exporter renders
      // non-finite doubles as null, which parses as kNull here.
      const JsonValue* ucb = args->Find("ucb");
      const JsonValue* padding = args->Find("padding");
      rec.never_pulled = rec.count <= 0.0 || ucb == nullptr ||
                         !ucb->is_number();
      if (!rec.never_pulled) {
        rec.ucb = ucb->NumberOr(0.0);
        rec.padding = padding != nullptr ? padding->NumberOr(0.0) : 0.0;
        // Eq. 10 padding re-derived from the logged inputs; the logger uses
        // the identical expression, so any drift means the logged context
        // no longer explains the decision.
        const double recon_padding =
            rec.exploration_coef *
            std::sqrt(2.0 * std::log(std::max(rec.total, 1.000001)) /
                      rec.count);
        rec.ucb_reconstructed = rec.mean + recon_padding;
        rec.reconstruction_error = std::fabs(rec.ucb - rec.ucb_reconstructed);
      }
      select_order[rec.worker].push_back(out.size());
      out.push_back(rec);
    } else if (kind == "eucb_reward") {
      const int worker = static_cast<int>(NumArg(*args, "worker", -1));
      if (worker < 0) continue;
      const size_t k = rewards_seen[worker]++;
      const auto& selects = select_order[worker];
      if (k < selects.size()) {
        out[selects[k]].has_reward = true;
        out[selects[k]].reward = NumArg(*args, "reward", 0.0);
      }
    }
  }
  return out;
}

double MaxReconstructionError(const std::vector<DecisionRecord>& decisions) {
  double worst = 0.0;
  for (const DecisionRecord& d : decisions) {
    if (d.never_pulled) continue;
    worst = std::max(worst, d.reconstruction_error);
  }
  return worst;
}

std::string RenderDecisionTable(const std::vector<DecisionRecord>& decisions) {
  std::string out;
  char buf[224];
  std::map<int, std::vector<const DecisionRecord*>> by_worker;
  for (const DecisionRecord& d : decisions) {
    by_worker[d.worker].push_back(&d);
  }
  out += "E-UCB decision audit (why this ratio)\n";
  for (const auto& [worker, pulls] : by_worker) {
    std::snprintf(buf, sizeof(buf), "  worker %d\n", worker);
    out += buf;
    out +=
        "    pull  leaf            arm     ratio   N_k      mean     "
        "padding  ucb      reward\n";
    for (const DecisionRecord* d : pulls) {
      if (d->never_pulled) {
        std::snprintf(buf, sizeof(buf),
                      "    %4d  [%.3f,%.3f)  %7.4f  %7.4f  unexplored leaf "
                      "(ucb=+inf)          %7.4f\n",
                      d->pull, d->leaf_lo, d->leaf_hi, d->arm_ratio,
                      d->executed_ratio, d->has_reward ? d->reward : 0.0);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "    %4d  [%.3f,%.3f)  %7.4f  %7.4f  %6.3f  %8.5f  "
                      "%7.5f  %7.5f  %7.4f\n",
                      d->pull, d->leaf_lo, d->leaf_hi, d->arm_ratio,
                      d->executed_ratio, d->count, d->mean, d->padding,
                      d->ucb, d->has_reward ? d->reward : 0.0);
      }
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "  max UCB reconstruction error: %.3g over %d audited pulls\n",
                MaxReconstructionError(decisions),
                static_cast<int>(decisions.size()));
  out += buf;
  return out;
}

std::string DecisionAuditJson(const std::vector<DecisionRecord>& decisions) {
  std::string out = "{\"max_reconstruction_error\":";
  out += JsonNumber(MaxReconstructionError(decisions), 12);
  out += ",\"pulls\":[";
  char buf[640];
  for (size_t i = 0; i < decisions.size(); ++i) {
    const DecisionRecord& d = decisions[i];
    if (i > 0) out += ",";
    std::snprintf(
        buf, sizeof(buf),
        "{\"worker\":%d,\"pull\":%d,\"arm_ratio\":%s,\"executed_ratio\":%s,"
        "\"leaf_lo\":%s,\"leaf_hi\":%s,\"count\":%s,\"mean\":%s,"
        "\"padding\":%s,\"ucb\":%s,\"total\":%s,\"coef\":%s,\"depth\":%d,"
        "\"leaves\":%d,\"never_pulled\":%s,\"reward\":%s,"
        "\"reconstruction_error\":%s}",
        d.worker, d.pull, JsonNumber(d.arm_ratio, 6).c_str(),
        JsonNumber(d.executed_ratio, 6).c_str(),
        JsonNumber(d.leaf_lo, 6).c_str(), JsonNumber(d.leaf_hi, 6).c_str(),
        JsonNumber(d.count, 6).c_str(), JsonNumber(d.mean, 8).c_str(),
        d.never_pulled ? "null" : JsonNumber(d.padding, 8).c_str(),
        d.never_pulled ? "null" : JsonNumber(d.ucb, 8).c_str(),
        JsonNumber(d.total, 6).c_str(),
        JsonNumber(d.exploration_coef, 6).c_str(), d.depth, d.leaves,
        d.never_pulled ? "true" : "false",
        d.has_reward ? JsonNumber(d.reward, 8).c_str() : "null",
        d.never_pulled ? "null"
                       : JsonNumber(d.reconstruction_error, 12).c_str());
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace fedmp::obs::analysis
