#ifndef FEDMP_OBS_ANALYSIS_JSON_VALUE_H_
#define FEDMP_OBS_ANALYSIS_JSON_VALUE_H_

#include <string>
#include <utility>
#include <vector>

// Minimal JSON DOM for the post-hoc analyzers. The exporters in obs/ only
// needed a syntax checker (json_util.h); the analyzers need to read the
// values back. Deliberately std-only so analysis stays inside the
// dependency-free obs layer.
namespace fedmp::obs::analysis {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered (duplicate keys keep the first occurrence on Find).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed accessors with defaults (also applied on kind mismatch).
  double NumberOr(double fallback) const;
  int64_t IntOr(int64_t fallback) const;
  std::string StringOr(const std::string& fallback) const;
};

// Parses one JSON document. On failure returns false and sets `error` (when
// non-null) to a position-tagged message.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

// Parses a JSONL stream: one JSON object per non-empty line. Stops at the
// first malformed line (returns false, reports the line number).
bool ParseJsonLines(const std::string& text, std::vector<JsonValue>* out,
                    std::string* error = nullptr);

}  // namespace fedmp::obs::analysis

#endif  // FEDMP_OBS_ANALYSIS_JSON_VALUE_H_
