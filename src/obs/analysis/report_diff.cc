#include "obs/analysis/report_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/analysis/json_value.h"
#include "obs/json_util.h"

namespace fedmp::obs::analysis {

namespace {

// The comparable scalars extracted from one report document.
struct ReportFacts {
  bool parsed = false;
  int64_t rounds = 0;               // round_health entries
  double mean_critical_total_s = 0.0;
  double max_straggler_gap = 0.0;
  int64_t alert_count = 0;
  std::map<std::string, int64_t> alerts_by_rule;
  std::map<std::string, double> hit_rates;
  std::map<std::string, double> last_round;  // numeric round-log tail
  std::map<std::string, double> resources;   // ledger totals (flops, bytes)
};

ReportFacts ExtractFacts(const std::string& text, const char* label,
                         std::vector<std::string>* warnings) {
  ReportFacts facts;
  JsonValue doc;
  std::string error;
  if (!ParseJson(text, &doc, &error)) {
    warnings->push_back(std::string(label) + ": " + error);
    return facts;
  }
  facts.parsed = true;
  if (const JsonValue* health = doc.Find("round_health")) {
    if (health->kind == JsonValue::Kind::kArray) {
      double critical_sum = 0.0;
      for (const JsonValue& round : health->array) {
        ++facts.rounds;
        if (const JsonValue* v = round.Find("critical_total_s")) {
          critical_sum += v->NumberOr(0.0);
        }
        if (const JsonValue* v = round.Find("straggler_gap_max")) {
          facts.max_straggler_gap =
              std::max(facts.max_straggler_gap, v->NumberOr(0.0));
        }
      }
      if (facts.rounds > 0) {
        facts.mean_critical_total_s =
            critical_sum / static_cast<double>(facts.rounds);
      }
    }
  }
  if (const JsonValue* alerts = doc.Find("alerts")) {
    if (const JsonValue* count = alerts->Find("count")) {
      facts.alert_count = count->IntOr(0);
    }
    if (const JsonValue* by_rule = alerts->Find("by_rule")) {
      if (by_rule->is_object()) {
        for (const auto& [rule, count] : by_rule->object) {
          facts.alerts_by_rule[rule] = count.IntOr(0);
        }
      }
    }
  }
  if (const JsonValue* rates = doc.Find("hit_rates")) {
    if (rates->is_object()) {
      for (const auto& [name, rate] : rates->object) {
        if (rate.is_number()) facts.hit_rates[name] = rate.number;
      }
    }
  }
  if (const JsonValue* last = doc.Find("last_round")) {
    if (last->is_object()) {
      for (const auto& [key, value] : last->object) {
        if (value.is_number()) facts.last_round[key] = value.number;
      }
    }
  }
  if (const JsonValue* res = doc.Find("resources")) {
    if (const JsonValue* totals = res->Find("totals")) {
      if (totals->is_object()) {
        for (const auto& [key, value] : totals->object) {
          if (value.is_number()) facts.resources[key] = value.number;
        }
      }
    }
  }
  return facts;
}

// All keys present in either map, sorted (std::map iteration order).
template <typename M>
std::map<std::string, char> KeyUnion(const M& a, const M& b) {
  std::map<std::string, char> keys;
  for (const auto& [k, v] : a) keys[k] = 0;
  for (const auto& [k, v] : b) keys[k] = 0;
  return keys;
}

}  // namespace

ReportDiff DiffReports(const std::string& a_json, const std::string& b_json) {
  ReportDiff diff;
  const ReportFacts a = ExtractFacts(a_json, "a", &diff.warnings);
  const ReportFacts b = ExtractFacts(b_json, "b", &diff.warnings);
  if (!a.parsed || !b.parsed) return diff;

  std::string human = "== fedmp_report diff (a -> b) ==\n";
  std::string json = "{\"schema\":\"fedmp_report_diff/1\"";
  char buf[192];

  auto row = [&](const char* name, double va, double vb) {
    std::snprintf(buf, sizeof(buf), "  %-32s %14.6g %14.6g %+14.6g\n", name,
                  va, vb, vb - va);
    human += buf;
  };
  auto jnum = [&](const char* name, double va, double vb) {
    json += std::string(",\"") + name + "\":{\"a\":" + JsonNumber(va, 6) +
            ",\"b\":" + JsonNumber(vb, 6) +
            ",\"delta\":" + JsonNumber(vb - va, 6) + "}";
  };

  human += "\nRound health\n";
  std::snprintf(buf, sizeof(buf), "  %-32s %14s %14s %14s\n", "metric", "a",
                "b", "delta");
  human += buf;
  row("rounds", static_cast<double>(a.rounds), static_cast<double>(b.rounds));
  row("mean_critical_total_s", a.mean_critical_total_s,
      b.mean_critical_total_s);
  row("max_straggler_gap_s", a.max_straggler_gap, b.max_straggler_gap);
  jnum("rounds", static_cast<double>(a.rounds),
       static_cast<double>(b.rounds));
  jnum("mean_critical_total_s", a.mean_critical_total_s,
       b.mean_critical_total_s);
  jnum("max_straggler_gap_s", a.max_straggler_gap, b.max_straggler_gap);

  human += "\nRound log (last round)\n";
  json += ",\"last_round\":{";
  bool first = true;
  for (const auto& [key, unused] : KeyUnion(a.last_round, b.last_round)) {
    const auto ia = a.last_round.find(key);
    const auto ib = b.last_round.find(key);
    const double va = ia != a.last_round.end() ? ia->second : 0.0;
    const double vb = ib != b.last_round.end() ? ib->second : 0.0;
    row(key.c_str(), va, vb);
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(key) + "\":{\"a\":" + JsonNumber(va, 6) +
            ",\"b\":" + JsonNumber(vb, 6) +
            ",\"delta\":" + JsonNumber(vb - va, 6) + "}";
  }
  json += "}";

  human += "\nResources (run totals)\n";
  json += ",\"resources\":{";
  first = true;
  for (const auto& [key, unused] : KeyUnion(a.resources, b.resources)) {
    const auto ia = a.resources.find(key);
    const auto ib = b.resources.find(key);
    const double va = ia != a.resources.end() ? ia->second : 0.0;
    const double vb = ib != b.resources.end() ? ib->second : 0.0;
    row(key.c_str(), va, vb);
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(key) + "\":{\"a\":" + JsonNumber(va, 6) +
            ",\"b\":" + JsonNumber(vb, 6) +
            ",\"delta\":" + JsonNumber(vb - va, 6) + "}";
  }
  json += "}";

  human += "\nCache hit rates\n";
  json += ",\"hit_rates\":{";
  first = true;
  for (const auto& [name, unused] : KeyUnion(a.hit_rates, b.hit_rates)) {
    const auto ia = a.hit_rates.find(name);
    const auto ib = b.hit_rates.find(name);
    const double va = ia != a.hit_rates.end() ? ia->second : 0.0;
    const double vb = ib != b.hit_rates.end() ? ib->second : 0.0;
    row(name.c_str(), va, vb);
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(name) + "\":{\"a\":" + JsonNumber(va, 6) +
            ",\"b\":" + JsonNumber(vb, 6) +
            ",\"delta\":" + JsonNumber(vb - va, 6) + "}";
  }
  json += "}";

  human += "\nAlerts\n";
  row("alerts_total", static_cast<double>(a.alert_count),
      static_cast<double>(b.alert_count));
  jnum("alerts_total", static_cast<double>(a.alert_count),
       static_cast<double>(b.alert_count));
  json += ",\"alerts_by_rule\":{";
  first = true;
  for (const auto& [rule, unused] :
       KeyUnion(a.alerts_by_rule, b.alerts_by_rule)) {
    const auto ia = a.alerts_by_rule.find(rule);
    const auto ib = b.alerts_by_rule.find(rule);
    const int64_t va = ia != a.alerts_by_rule.end() ? ia->second : 0;
    const int64_t vb = ib != b.alerts_by_rule.end() ? ib->second : 0;
    row(rule.c_str(), static_cast<double>(va), static_cast<double>(vb));
    if (!first) json += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":{\"a\":%lld,\"b\":%lld,\"delta\":%lld}",
                  JsonEscape(rule).c_str(), static_cast<long long>(va),
                  static_cast<long long>(vb), static_cast<long long>(vb - va));
    json += buf;
  }
  json += "}}";

  diff.human = std::move(human);
  diff.json = std::move(json);
  return diff;
}

}  // namespace fedmp::obs::analysis
