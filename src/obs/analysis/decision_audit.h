#ifndef FEDMP_OBS_ANALYSIS_DECISION_AUDIT_H_
#define FEDMP_OBS_ANALYSIS_DECISION_AUDIT_H_

#include <string>
#include <vector>

#include "obs/analysis/json_value.h"

// Post-hoc audit of the E-UCB arm pulls. FedMpStrategy's `eucb_select`
// events carry the full decision context (chosen leaf interval, discounted
// count N_k, discounted mean, padding term, UCB score, total discounted
// pulls, exploration coefficient, tree shape); `eucb_reward` events carry
// the squashed Eq. 8 reward the arm later earned. The audit pairs the two
// per worker, re-derives the UCB score from the logged inputs as an
// integrity check, and renders a per-worker "why this ratio" table.
namespace fedmp::obs::analysis {

struct DecisionRecord {
  int worker = -1;
  int pull = 0;               // per-worker pull index (event order)
  double arm_ratio = 0.0;     // raw arm the bandit sampled
  double executed_ratio = 0.0;  // ratio after theta-grid snapping
  double leaf_lo = 0.0, leaf_hi = 0.0;
  double count = 0.0;         // discounted N_k of the chosen leaf
  double mean = 0.0;          // discounted empirical mean (Eq. 9)
  double padding = 0.0;       // exploration padding (Eq. 10)
  double ucb = 0.0;           // logged U_k (Eq. 11)
  double total = 0.0;         // total discounted pulls n(lambda)
  double exploration_coef = 0.0;
  int depth = 0;
  int leaves = 0;
  bool never_pulled = false;  // leaf had no rewarded pulls: UCB was +inf
  bool has_reward = false;
  double reward = 0.0;        // squashed Eq. 8 reward observed for the arm
  // Integrity check: U_k recomputed from (mean, count, total, coef).
  double ucb_reconstructed = 0.0;
  double reconstruction_error = 0.0;
};

// Extracts decision records from parsed events-JSONL lines, pairing each
// worker's k-th eucb_select with its k-th eucb_reward.
std::vector<DecisionRecord> DecisionsFromEvents(
    const std::vector<JsonValue>& events);

// Largest |U_k - reconstructed U_k| over finite-UCB records (0 when none).
double MaxReconstructionError(const std::vector<DecisionRecord>& decisions);

// Per-worker "why this ratio" table: one row per pull showing the chosen
// leaf, its discounted statistics, the resulting score, and the reward the
// arm went on to earn.
std::string RenderDecisionTable(const std::vector<DecisionRecord>& decisions);

// The audit as a JSON object {"max_reconstruction_error":..,"pulls":[..]}.
std::string DecisionAuditJson(const std::vector<DecisionRecord>& decisions);

}  // namespace fedmp::obs::analysis

#endif  // FEDMP_OBS_ANALYSIS_DECISION_AUDIT_H_
