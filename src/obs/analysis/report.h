#ifndef FEDMP_OBS_ANALYSIS_REPORT_H_
#define FEDMP_OBS_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

// Folds a traced run's artifacts (manifest, deterministic events JSONL,
// metrics snapshot, rounds JSONL, Chrome trace) into one human-readable and
// one JSON report. The report separates:
//   * deterministic sections — round health / critical path and the E-UCB
//     decision audit, derived only from logical-time events, so they are
//     byte-identical across thread counts for a fixed seed;
//   * environment sections — manifest, cache/pool counters and hit rates,
//     wall-clock phase breakdown — which depend on the host and thread
//     count and are suppressed by ReportOptions::deterministic_only.
namespace fedmp::obs::analysis {

struct ReportInputs {
  // File CONTENTS (not paths): the CLI reads the files, the library stays
  // filesystem-free for tests. Empty inputs skip their sections.
  std::string manifest_json;
  std::string events_jsonl;
  std::string metrics_json;
  std::string rounds_jsonl;
  std::string chrome_trace_json;
};

struct ReportOptions {
  // Emit only the logical-time sections (used by the determinism tests to
  // compare 1-thread vs N-thread reports byte for byte).
  bool deterministic_only = false;
};

struct Report {
  std::string human;  // aligned text report
  std::string json;   // same content as one JSON document
  std::vector<std::string> warnings;  // unparseable inputs, missing sections
};

Report BuildReport(const ReportInputs& inputs,
                   const ReportOptions& options = {});

}  // namespace fedmp::obs::analysis

#endif  // FEDMP_OBS_ANALYSIS_REPORT_H_
