#ifndef FEDMP_OBS_SNAPSHOT_H_
#define FEDMP_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>

// Periodic health snapshots: every K rounds the trainer atomically replaces
// one JSON file with a fedmp_report/1-compatible document built from the
// LIVE buffers (manifest, deterministic events, metrics registry — which
// carries the fl.scale.peak_rss_bytes gauge and the bandit decision audit
// events), so a long run is tail-able:
//
//   FEDMP_HEALTH_SNAPSHOT=health.json FEDMP_HEALTH_SNAPSHOT_EVERY=10 ...
//   watch -n5 "python3 -m json.tool health.json | head"
//
// Writes are tmp + rename, so a reader never observes a torn file. When
// the flight recorder is active its bounded ring feeds the round-health
// section (O(capacity) work per snapshot); otherwise the full trace buffer
// does. An optional second file serves the metrics text format for trivial
// poll/scrape consumers.
namespace fedmp::obs {

struct SnapshotOptions {
  // Report JSON path; empty disables.
  std::string path;
  // Snapshot cadence in rounds (round 0, K, 2K, ...).
  int64_t every_rounds = 10;
  // Optional metrics text-format poll file; empty = skip.
  std::string metrics_text_path;
};

void EnableHealthSnapshots(const SnapshotOptions& options);
void DisableHealthSnapshots();
bool HealthSnapshotsActive();

// Enables from FEDMP_HEALTH_SNAPSHOT=<report.json> with
// FEDMP_HEALTH_SNAPSHOT_EVERY=<K> (default 10) and
// FEDMP_HEALTH_SNAPSHOT_METRICS=<metrics.txt> overrides. Returns whether
// snapshots ended up active.
bool MaybeEnableSnapshotsFromEnv();

// Whether `round` is a snapshot boundary under the active cadence.
bool HealthSnapshotDue(int64_t round);

// Builds the report from the live buffers and atomically replaces the
// configured file(s). Returns false when inactive or the write failed.
bool WriteHealthSnapshot(int64_t round);

void SnapshotResetForTest();

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_SNAPSHOT_H_
