#include "fl/pipeline.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "fl/quantize.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

namespace {

std::atomic<bool> g_pipeline_enabled{true};
std::atomic<bool> g_pipeline_env_checked{false};

void MaybeReadPipelineEnv() {
  if (g_pipeline_env_checked.exchange(true)) return;
  const char* pipeline = std::getenv("FEDMP_PIPELINE");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((pipeline != nullptr && pipeline[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_pipeline_enabled.store(false, std::memory_order_relaxed);
  }
}

}  // namespace

bool PipelineEnabled() {
  MaybeReadPipelineEnv();
  return g_pipeline_enabled.load(std::memory_order_relaxed);
}

void SetPipelineEnabled(bool on) {
  g_pipeline_env_checked.store(true);  // explicit choice overrides the env
  g_pipeline_enabled.store(on, std::memory_order_relaxed);
}

StreamingAggregator::StreamingAggregator(const nn::ModelSpec& spec,
                                         const nn::TensorList& global_weights,
                                         int num_slots, SyncScheme scheme,
                                         bool quantize_residuals)
    : spec_(spec),
      global_weights_(global_weights),
      scheme_(scheme),
      quantize_residuals_(quantize_residuals),
      slots_(static_cast<size_t>(num_slots)) {
  FEDMP_CHECK_GT(num_slots, 0);
}

void StreamingAggregator::Accumulate(int slot,
                                     const nn::TensorList& sub_weights,
                                     const pruning::PruneMask& mask) {
  // The contribution is a pure function of (global, sub, mask): computed
  // outside the lock so slots overlap, folded in slot order later.
  nn::TensorList contribution;
  Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  if (scheme_ == SyncScheme::kR2SP) {
    nn::TensorList residual;
    st = pruning::ResidualModelInto(spec_, global_weights_, mask, &residual);
    FEDMP_CHECK(st.ok()) << st;
    if (quantize_residuals_) {
      residual = DequantizeList(Quantize8List(residual));
    }
    nn::AxpyLists(contribution, 1.0f, residual);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<size_t>(slot)];
  FEDMP_CHECK(!s.ready) << "slot " << slot << " accumulated twice";
  s.contribution = std::move(contribution);
  s.ready = true;
  FoldReadyLocked();
}

void StreamingAggregator::AccumulateWithResidual(
    int slot, const nn::TensorList& sub_weights,
    const pruning::PruneMask& mask, const nn::TensorList& residual) {
  nn::TensorList contribution;
  const Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  nn::AxpyLists(contribution, 1.0f, residual);
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<size_t>(slot)];
  FEDMP_CHECK(!s.ready) << "slot " << slot << " accumulated twice";
  s.contribution = std::move(contribution);
  s.ready = true;
  FoldReadyLocked();
}

void StreamingAggregator::MarkUnavailable(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<size_t>(slot)];
  FEDMP_CHECK(!s.ready) << "slot " << slot << " accumulated twice";
  s.ready = true;
  FoldReadyLocked();
}

void StreamingAggregator::Admit(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<size_t>(slot)];
  FEDMP_CHECK(s.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  s.decision = Decision::kAdmitted;
  FoldReadyLocked();
}

void StreamingAggregator::Reject(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<size_t>(slot)];
  FEDMP_CHECK(s.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  s.decision = Decision::kRejected;
  FoldReadyLocked();
}

void StreamingAggregator::FoldReadyLocked() {
  while (folded_ < static_cast<int>(slots_.size())) {
    Slot& s = slots_[static_cast<size_t>(folded_)];
    // `ready` gates even rejected slots: it is the publish point for the
    // slot's storage, so freeing before it risks racing the producer.
    if (!s.ready || s.decision == Decision::kPending) return;
    if (s.decision == Decision::kAdmitted) {
      FEDMP_CHECK(!s.contribution.empty())
          << "admitted slot " << folded_ << " has no payload";
      if (sum_.empty()) {
        sum_ = std::move(s.contribution);  // first admitted slot seeds
      } else {
        nn::AxpyLists(sum_, 1.0f, s.contribution);
      }
      ++participants_;
    }
    s.contribution.clear();
    ++folded_;
  }
}

StreamingAggregator::Result StreamingAggregator::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  FEDMP_CHECK_EQ(folded_, static_cast<int>(slots_.size()))
      << "Finish() before every slot was decided and ready";
  FEDMP_CHECK_GT(participants_, 0) << "aggregation with no participants";
  // Same telemetry as the serial AggregateSubModels, so traces and metric
  // dumps are invariant to the pipeline toggle.
  OBS_SPAN("r2sp_aggregate",
           {{"scheme", SyncSchemeName(scheme_)}, {"updates", participants_}});
  if (obs::Enabled()) {
    static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
    static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
    aggs->Add(1.0);
    upd->Add(static_cast<double>(participants_));
  }
  Result out;
  out.sum = std::move(sum_);
  out.participants = participants_;
  return out;
}

}  // namespace fedmp::fl
