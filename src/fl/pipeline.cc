#include "fl/pipeline.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/range_tree.h"
#include "fl/quantize.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

namespace {

std::atomic<bool> g_pipeline_enabled{true};
std::atomic<bool> g_pipeline_env_checked{false};

void MaybeReadPipelineEnv() {
  if (g_pipeline_env_checked.exchange(true)) return;
  const char* pipeline = std::getenv("FEDMP_PIPELINE");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((pipeline != nullptr && pipeline[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_pipeline_enabled.store(false, std::memory_order_relaxed);
  }
}

}  // namespace

bool PipelineEnabled() {
  MaybeReadPipelineEnv();
  return g_pipeline_enabled.load(std::memory_order_relaxed);
}

void SetPipelineEnabled(bool on) {
  g_pipeline_env_checked.store(true);  // explicit choice overrides the env
  g_pipeline_enabled.store(on, std::memory_order_relaxed);
}

StreamingAggregator::StreamingAggregator(const nn::ModelSpec& spec,
                                         const nn::TensorList& global_weights,
                                         int num_slots, SyncScheme scheme,
                                         bool quantize_residuals,
                                         int ps_shards)
    : spec_(spec),
      global_weights_(global_weights),
      scheme_(scheme),
      quantize_residuals_(quantize_residuals),
      num_slots_(num_slots),
      shards_(num_slots, ResolvePsShards(ps_shards, num_slots)) {
  FEDMP_CHECK_GT(num_slots, 0);
  // Zero-extend through unsigned: a plain int -> size_t cast sign-extends,
  // and GCC warns about the (checked-impossible) negative-count fill.
  const size_t slots = static_cast<unsigned int>(num_slots);
  leaf_of_slot_.assign(slots, -1);
  nodes_.reserve(2 * slots - 1);
  root_ = BuildTree(0, num_slots, -1);
  // Locate each shard's subtree root: every shard slice is a canonical
  // node, so a descent from the root lands on a node with exactly the
  // shard's range.
  shard_resolved_.assign(static_cast<size_t>(shards_.num_shards()), 0);
  shard_root_.resize(static_cast<size_t>(shards_.num_shards()));
  for (int s = 0; s < shards_.num_shards(); ++s) {
    const auto [lo, hi] = shards_.shard_range(s);
    int id = root_;
    while (nodes_[static_cast<size_t>(id)].lo != lo ||
           nodes_[static_cast<size_t>(id)].hi != hi) {
      const Node& node = nodes_[static_cast<size_t>(id)];
      const int64_t mid = nodes_[static_cast<size_t>(node.left)].hi;
      FEDMP_CHECK(hi <= mid || lo >= mid)
          << "shard [" << lo << ", " << hi << ") straddles a tree node";
      id = hi <= mid ? node.left : node.right;
    }
    shard_root_[static_cast<size_t>(s)] = id;
  }
}

int StreamingAggregator::BuildTree(int lo, int hi, int parent) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].lo = lo;
  nodes_[id].hi = hi;
  nodes_[id].parent = parent;
  if (hi - lo == 1) {
    leaf_of_slot_[static_cast<size_t>(lo)] = id;
    return id;
  }
  const int mid = static_cast<int>(CanonicalSplit(lo, hi));
  // Children indices are assigned after recursion completes; nodes_ may
  // reallocate during it, so write through the index, not a reference.
  const int left = BuildTree(lo, mid, id);
  const int right = BuildTree(mid, hi, id);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void StreamingAggregator::Accumulate(int slot,
                                     const nn::TensorList& sub_weights,
                                     const pruning::PruneMask& mask) {
  // The contribution is a pure function of (global, sub, mask): computed
  // outside the lock so slots overlap, merged along the canonical tree.
  nn::TensorList contribution;
  Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  if (scheme_ == SyncScheme::kR2SP) {
    // Per-lane scratch: ResidualModelInto refills matching shapes in place,
    // so each lane reuses one full-model list across every slot it folds
    // instead of allocating (and faulting in) a fresh one per contribution.
    // Peak scratch is O(lanes x model), and the values are a pure function
    // of (global, mask) either way — bit-identical to a fresh list.
    thread_local nn::TensorList residual;
    st = pruning::ResidualModelInto(spec_, global_weights_, mask, &residual);
    FEDMP_CHECK(st.ok()) << st;
    if (quantize_residuals_) {
      nn::TensorList rounded = DequantizeList(Quantize8List(residual));
      nn::AxpyLists(contribution, 1.0f, rounded);
    } else {
      nn::AxpyLists(contribution, 1.0f, residual);
    }
  }
  const int shard = shards_.shard_of(slot);
  std::lock_guard<std::mutex> lock(shards_.mutex(shard));
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.sum = std::move(contribution);
  leaf.participants = 1;
  leaf.ready = true;
  ResolveLeafLocked(slot, shard);
}

void StreamingAggregator::AccumulateWithResidual(
    int slot, const nn::TensorList& sub_weights,
    const pruning::PruneMask& mask, const nn::TensorList& residual) {
  nn::TensorList contribution;
  const Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  nn::AxpyLists(contribution, 1.0f, residual);
  const int shard = shards_.shard_of(slot);
  std::lock_guard<std::mutex> lock(shards_.mutex(shard));
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.sum = std::move(contribution);
  leaf.participants = 1;
  leaf.ready = true;
  ResolveLeafLocked(slot, shard);
}

void StreamingAggregator::MarkUnavailable(int slot) {
  const int shard = shards_.shard_of(slot);
  std::lock_guard<std::mutex> lock(shards_.mutex(shard));
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.ready = true;
  ResolveLeafLocked(slot, shard);
}

void StreamingAggregator::Admit(int slot) {
  const int shard = shards_.shard_of(slot);
  std::lock_guard<std::mutex> lock(shards_.mutex(shard));
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(leaf.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  leaf.decision = Decision::kAdmitted;
  ResolveLeafLocked(slot, shard);
}

void StreamingAggregator::Reject(int slot) {
  const int shard = shards_.shard_of(slot);
  std::lock_guard<std::mutex> lock(shards_.mutex(shard));
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(leaf.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  leaf.decision = Decision::kRejected;
  ResolveLeafLocked(slot, shard);
}

void StreamingAggregator::ResolveLeafLocked(int slot, int shard) {
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  // `ready` gates even rejected slots: it is the publish point for the
  // slot's storage, so freeing before it risks racing the producer.
  if (!leaf.ready || leaf.decision == Decision::kPending || leaf.resolved) {
    return;
  }
  if (leaf.decision == Decision::kAdmitted) {
    FEDMP_CHECK(!leaf.sum.empty())
        << "admitted slot " << slot << " has no payload";
  } else if (!leaf.sum.empty()) {
    // Rejected payload: drop it, the slot is a hole. Fresh-object
    // assignment, not clear(): clear() keeps the tensor-struct capacity
    // alive in the resolved node, and resolved nodes are never reused —
    // across a fleet-sized round that capacity is an O(slots) heap floor.
    leaf.sum = nn::TensorList();
    leaf.participants = 0;
  }
  leaf.resolved = true;
  ++shard_resolved_[static_cast<size_t>(shard)];
  // Bubble up: a parent collapses the moment both children are resolved,
  // merging left-then-right (empty = hole passthrough) exactly as the
  // serial oracle's depth-first descent would — this is why completion
  // order never changes the bits, only when each merge happens. The climb
  // stops at the shard's subtree root: nodes above it span other shards
  // (other locks) and are merged by Finish()'s top fold instead.
  const int stop = shard_root_[static_cast<size_t>(shard)];
  if (leaf_of_slot_[slot] == stop) return;  // single-slot shard
  int id = leaf.parent;
  while (id >= 0) {
    Node& node = nodes_[static_cast<size_t>(id)];
    Node& left = nodes_[static_cast<size_t>(node.left)];
    Node& right = nodes_[static_cast<size_t>(node.right)];
    if (!left.resolved || !right.resolved) return;
    if (left.sum.empty()) {
      node.sum = std::move(right.sum);
    } else {
      node.sum = std::move(left.sum);
      if (!right.sum.empty()) nn::AxpyLists(node.sum, 1.0f, right.sum);
    }
    // Fresh objects, not clear(): the Axpy-consumed child keeps its
    // outer-vector capacity through clear(), and collapsed nodes are dead
    // for the rest of the round — one ~300 B husk per merge is an
    // O(slots) retained-heap term at fleet scale (the dominant one the
    // RSS gate caught at 100k).
    left.sum = nn::TensorList();
    right.sum = nn::TensorList();
    node.participants = left.participants + right.participants;
    node.resolved = true;
    if (id == stop) return;
    id = node.parent;
  }
}

StreamingAggregator::Result StreamingAggregator::FinishInternal(
    bool allow_empty, bool emit_telemetry) {
  // Lock each shard once: the acquisition is the publish point for that
  // shard's subtree (every producer released the same lock after its last
  // write), and the count check proves no producer can touch it again.
  int resolved = 0;
  for (int s = 0; s < shards_.num_shards(); ++s) {
    std::lock_guard<std::mutex> lock(shards_.mutex(s));
    resolved += shard_resolved_[static_cast<size_t>(s)];
  }
  FEDMP_CHECK_EQ(resolved, num_slots_)
      << "Finish() before every slot was decided and ready";
  // Merge the shard roots down the canonical top tree — O(num_shards)
  // merges with the descent-to-shard-boundaries association, which is the
  // same association the unsharded bubble-up produced when it climbed all
  // the way to the root.
  std::function<ShardPartial(int64_t, int64_t)> fold =
      [&](int64_t lo, int64_t hi) -> ShardPartial {
    const int s = shards_.shard_of(lo);
    if (shards_.shard_range(s) == std::make_pair(lo, hi)) {
      Node& shard_root = nodes_[static_cast<size_t>(
          shard_root_[static_cast<size_t>(s)])];
      FEDMP_CHECK(shard_root.resolved);
      ShardPartial part;
      part.sum = std::move(shard_root.sum);
      part.participants = shard_root.participants;
      return part;
    }
    const int64_t mid = CanonicalSplit(lo, hi);
    ShardPartial left = fold(lo, mid);
    ShardPartial right = fold(mid, hi);
    if (left.sum.empty()) {
      left.sum = std::move(right.sum);
    } else if (!right.sum.empty()) {
      nn::AxpyLists(left.sum, 1.0f, right.sum);
    }
    left.participants += right.participants;
    return left;
  };
  ShardPartial total = fold(0, num_slots_);
  if (!allow_empty) {
    FEDMP_CHECK_GT(total.participants, 0)
        << "aggregation with no participants";
  }
  if (emit_telemetry) {
    // Same telemetry as the serial AggregateSubModels, so traces and metric
    // dumps are invariant to the pipeline toggle.
    OBS_SPAN("r2sp_aggregate", {{"scheme", SyncSchemeName(scheme_)},
                                {"updates", total.participants}});
    if (obs::Enabled()) {
      static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
      static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
      aggs->Add(1.0);
      upd->Add(static_cast<double>(total.participants));
    }
  }
  Result out;
  out.sum = std::move(total.sum);
  out.participants = total.participants;
  return out;
}

StreamingAggregator::Result StreamingAggregator::Finish() {
  return FinishInternal(/*allow_empty=*/false, /*emit_telemetry=*/true);
}

StreamingAggregator::Result StreamingAggregator::FinishPartial() {
  return FinishInternal(/*allow_empty=*/true, /*emit_telemetry=*/false);
}

}  // namespace fedmp::fl
