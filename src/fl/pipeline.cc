#include "fl/pipeline.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/range_tree.h"
#include "fl/quantize.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

namespace {

std::atomic<bool> g_pipeline_enabled{true};
std::atomic<bool> g_pipeline_env_checked{false};

void MaybeReadPipelineEnv() {
  if (g_pipeline_env_checked.exchange(true)) return;
  const char* pipeline = std::getenv("FEDMP_PIPELINE");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((pipeline != nullptr && pipeline[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_pipeline_enabled.store(false, std::memory_order_relaxed);
  }
}

}  // namespace

bool PipelineEnabled() {
  MaybeReadPipelineEnv();
  return g_pipeline_enabled.load(std::memory_order_relaxed);
}

void SetPipelineEnabled(bool on) {
  g_pipeline_env_checked.store(true);  // explicit choice overrides the env
  g_pipeline_enabled.store(on, std::memory_order_relaxed);
}

StreamingAggregator::StreamingAggregator(const nn::ModelSpec& spec,
                                         const nn::TensorList& global_weights,
                                         int num_slots, SyncScheme scheme,
                                         bool quantize_residuals)
    : spec_(spec),
      global_weights_(global_weights),
      scheme_(scheme),
      quantize_residuals_(quantize_residuals),
      num_slots_(num_slots) {
  FEDMP_CHECK_GT(num_slots, 0);
  leaf_of_slot_.assign(static_cast<size_t>(num_slots), -1);
  nodes_.reserve(static_cast<size_t>(2 * num_slots - 1));
  root_ = BuildTree(0, num_slots, -1);
}

int StreamingAggregator::BuildTree(int lo, int hi, int parent) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].lo = lo;
  nodes_[id].hi = hi;
  nodes_[id].parent = parent;
  if (hi - lo == 1) {
    leaf_of_slot_[static_cast<size_t>(lo)] = id;
    return id;
  }
  const int mid = static_cast<int>(CanonicalSplit(lo, hi));
  // Children indices are assigned after recursion completes; nodes_ may
  // reallocate during it, so write through the index, not a reference.
  const int left = BuildTree(lo, mid, id);
  const int right = BuildTree(mid, hi, id);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void StreamingAggregator::Accumulate(int slot,
                                     const nn::TensorList& sub_weights,
                                     const pruning::PruneMask& mask) {
  // The contribution is a pure function of (global, sub, mask): computed
  // outside the lock so slots overlap, merged along the canonical tree.
  nn::TensorList contribution;
  Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  if (scheme_ == SyncScheme::kR2SP) {
    nn::TensorList residual;
    st = pruning::ResidualModelInto(spec_, global_weights_, mask, &residual);
    FEDMP_CHECK(st.ok()) << st;
    if (quantize_residuals_) {
      residual = DequantizeList(Quantize8List(residual));
    }
    nn::AxpyLists(contribution, 1.0f, residual);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.sum = std::move(contribution);
  leaf.participants = 1;
  leaf.ready = true;
  ResolveLeafLocked(slot);
}

void StreamingAggregator::AccumulateWithResidual(
    int slot, const nn::TensorList& sub_weights,
    const pruning::PruneMask& mask, const nn::TensorList& residual) {
  nn::TensorList contribution;
  const Status st =
      pruning::RecoverToFullInto(spec_, sub_weights, mask, &contribution);
  FEDMP_CHECK(st.ok()) << st;
  nn::AxpyLists(contribution, 1.0f, residual);
  std::lock_guard<std::mutex> lock(mu_);
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.sum = std::move(contribution);
  leaf.participants = 1;
  leaf.ready = true;
  ResolveLeafLocked(slot);
}

void StreamingAggregator::MarkUnavailable(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(!leaf.ready) << "slot " << slot << " accumulated twice";
  leaf.ready = true;
  ResolveLeafLocked(slot);
}

void StreamingAggregator::Admit(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(leaf.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  leaf.decision = Decision::kAdmitted;
  ResolveLeafLocked(slot);
}

void StreamingAggregator::Reject(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  FEDMP_CHECK(leaf.decision == Decision::kPending)
      << "slot " << slot << " decided twice";
  leaf.decision = Decision::kRejected;
  ResolveLeafLocked(slot);
}

void StreamingAggregator::ResolveLeafLocked(int slot) {
  Node& leaf = nodes_[static_cast<size_t>(leaf_of_slot_[slot])];
  // `ready` gates even rejected slots: it is the publish point for the
  // slot's storage, so freeing before it risks racing the producer.
  if (!leaf.ready || leaf.decision == Decision::kPending || leaf.resolved) {
    return;
  }
  if (leaf.decision == Decision::kAdmitted) {
    FEDMP_CHECK(!leaf.sum.empty())
        << "admitted slot " << slot << " has no payload";
  } else if (!leaf.sum.empty()) {
    leaf.sum.clear();  // rejected payload: drop it, the slot is a hole
    leaf.participants = 0;
  }
  leaf.resolved = true;
  ++resolved_leaves_;
  // Bubble up: a parent collapses the moment both children are resolved,
  // merging left-then-right (empty = hole passthrough) exactly as the
  // serial oracle's depth-first descent would — this is why completion
  // order never changes the bits, only when each merge happens.
  int id = leaf.parent;
  while (id >= 0) {
    Node& node = nodes_[static_cast<size_t>(id)];
    Node& left = nodes_[static_cast<size_t>(node.left)];
    Node& right = nodes_[static_cast<size_t>(node.right)];
    if (!left.resolved || !right.resolved) return;
    if (left.sum.empty()) {
      node.sum = std::move(right.sum);
    } else {
      node.sum = std::move(left.sum);
      if (!right.sum.empty()) nn::AxpyLists(node.sum, 1.0f, right.sum);
    }
    left.sum.clear();
    right.sum.clear();
    node.participants = left.participants + right.participants;
    node.resolved = true;
    id = node.parent;
  }
}

StreamingAggregator::Result StreamingAggregator::FinishInternal(
    bool allow_empty, bool emit_telemetry) {
  std::lock_guard<std::mutex> lock(mu_);
  FEDMP_CHECK_EQ(resolved_leaves_, num_slots_)
      << "Finish() before every slot was decided and ready";
  Node& root = nodes_[static_cast<size_t>(root_)];
  FEDMP_CHECK(root.resolved);
  if (!allow_empty) {
    FEDMP_CHECK_GT(root.participants, 0) << "aggregation with no participants";
  }
  if (emit_telemetry) {
    // Same telemetry as the serial AggregateSubModels, so traces and metric
    // dumps are invariant to the pipeline toggle.
    OBS_SPAN("r2sp_aggregate", {{"scheme", SyncSchemeName(scheme_)},
                                {"updates", root.participants}});
    if (obs::Enabled()) {
      static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
      static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
      aggs->Add(1.0);
      upd->Add(static_cast<double>(root.participants));
    }
  }
  Result out;
  out.sum = std::move(root.sum);
  out.participants = root.participants;
  return out;
}

StreamingAggregator::Result StreamingAggregator::Finish() {
  return FinishInternal(/*allow_empty=*/false, /*emit_telemetry=*/true);
}

StreamingAggregator::Result StreamingAggregator::FinishPartial() {
  return FinishInternal(/*allow_empty=*/true, /*emit_telemetry=*/false);
}

}  // namespace fedmp::fl
