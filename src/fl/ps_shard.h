#ifndef FEDMP_FL_PS_SHARD_H_
#define FEDMP_FL_PS_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "nn/tensor_ops.h"

// Sharded parameter server (DESIGN.md "Sharded parameter server").
//
// At 10k+ workers the PS stops being a monolith: the worker-slot range is
// partitioned into canonical-tree slices (common/range_tree.h) and each
// slice gets an owner — its own lock for streaming accumulation and its own
// ThreadPool lane for the Finish() fold. Because every shard is a canonical
// tree node, per-shard subtree sums merge into the flat reduction with the
// exact association AggregateSubModels pins, so shard count never changes
// the aggregated bits — only who holds which lock and which lane folds
// which range.
namespace fedmp::fl {

// Effective shard count for a PS over `num_slots` worker slots.
// Precedence: FEDMP_PS_SHARDS env var (> 0) wins, then `requested` (> 0),
// then auto = the global pool's lane count. The result is clamped to
// [1, max(1, num_slots)]. Shard count 1 reproduces the unsharded path
// exactly (single lock, inline fold on the caller).
int ResolvePsShards(int requested, int num_slots);

// Test override: n > 0 forces every subsequent ResolvePsShards to n (before
// clamping); n == 0 restores normal env/requested/auto resolution.
void SetPsShards(int n);

// The ownership map: min(num_shards, num_slots) canonical slices over
// [0, num_slots), each with its own mutex. Copyable state lives in the
// slices; the locks are owned storage addressed by shard id.
class PsShardSet {
 public:
  // num_shards is clamped to [1, num_slots]. num_slots must be > 0.
  PsShardSet(int num_slots, int num_shards);

  PsShardSet(const PsShardSet&) = delete;
  PsShardSet& operator=(const PsShardSet&) = delete;

  int num_slots() const { return num_slots_; }
  int num_shards() const { return static_cast<int>(slices_.size()); }

  // The shard owning a global slot index.
  int shard_of(int64_t slot) const;

  // The slot range [lo, hi) owned by shard s.
  std::pair<int64_t, int64_t> shard_range(int s) const {
    return slices_[static_cast<size_t>(s)];
  }

  // The shard's accumulation lock. Callers lock only the owning shard, so
  // producers folding into different shards never contend.
  std::mutex& mutex(int s) const {
    return locks_[static_cast<size_t>(s)];
  }

 private:
  int num_slots_;
  std::vector<std::pair<int64_t, int64_t>> slices_;
  std::unique_ptr<std::mutex[]> locks_;
};

// One shard's (or the whole range's) partial reduction: the UNSCALED sum
// over admitted slots in the range, empty when every slot was a hole.
struct ShardPartial {
  nn::TensorList sum;
  int participants = 0;
};

// Computes fold_shard(s, lo, hi) for every shard and merges the results up
// the canonical top tree, returning the whole-range partial.
//
// With one shard the fold runs inline on the caller — the exact serial
// path, no pool traffic, no extra telemetry. With S > 1 each shard fold is
// submitted to the global pool and the CALLER does the top-tree merges in
// completion order while other shard folds are still running — the serial
// tail overlaps the parallel folds instead of waiting for all of them.
// Merge association is the canonical descent to shard boundaries, so the
// result is bit-identical to folding the shards serially in order.
//
// Telemetry (S > 1 only): each fold emits a ps_shard_fold span on its
// lane's pool track — Chrome-trace only, never in the deterministic JSONL
// export, so traces stay bit-identical across shard/thread counts — and
// samples VmHWM into fl.scale.peak_rss_bytes at the fold boundary (mid-
// round peaks, not just round end). fl.ps.shards and fl.ps.fold_lanes
// gauges record the shard count and how many distinct lanes executed
// folds this call.
ShardPartial ParallelShardFold(
    const PsShardSet& shards,
    const std::function<ShardPartial(int shard, int64_t lo, int64_t hi)>&
        fold_shard);

}  // namespace fedmp::fl

#endif  // FEDMP_FL_PS_SHARD_H_
