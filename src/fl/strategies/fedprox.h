#ifndef FEDMP_FL_STRATEGIES_FEDPROX_H_
#define FEDMP_FL_STRATEGIES_FEDPROX_H_

#include <vector>

#include "fl/strategy.h"

namespace fedmp::fl {

// FedProx baseline [19]: no pruning or compression; heterogeneous workers
// run DIFFERENT numbers of local iterations (slow workers do less work) and
// every local objective carries the proximal term mu/2 ||w - w_global||^2.
// Iteration counts adapt online from observed completion times (the PS has
// no prior capability knowledge, matching FedMP's setting).
struct FedProxOptions {
  double mu = 0.01;
  int64_t base_tau = 3;
  int64_t min_tau = 1;
  // Capped at base_tau: FedProx lets SLOW workers do partial work; it does
  // not grant fast workers extra iterations beyond the common tau.
  int64_t max_tau = 3;
  // EMA smoothing of per-worker completion-time estimates.
  double ema = 0.5;
};

class FedProxStrategy : public Strategy {
 public:
  explicit FedProxStrategy(const FedProxOptions& options = {});

  std::string Name() const override { return "FedProx"; }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t round,
                    const RoundObservation& observation) override;

  int64_t tau_for(int worker) const {
    return taus_[static_cast<size_t>(worker)];
  }

 private:
  FedProxOptions options_;
  int num_workers_ = 0;
  // Per-worker estimated seconds per local iteration (compute only).
  std::vector<double> per_iter_seconds_;
  std::vector<int64_t> taus_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGIES_FEDPROX_H_
