#include "fl/strategies/fedprox.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace fedmp::fl {

FedProxStrategy::FedProxStrategy(const FedProxOptions& options)
    : options_(options) {
  FEDMP_CHECK_GE(options.mu, 0.0);
  FEDMP_CHECK_GE(options.min_tau, 1);
  FEDMP_CHECK_GE(options.max_tau, options.min_tau);
}

void FedProxStrategy::Initialize(int num_workers, uint64_t /*seed*/) {
  FEDMP_CHECK_GT(num_workers, 0);
  num_workers_ = num_workers;
  per_iter_seconds_.assign(static_cast<size_t>(num_workers), 0.0);
  taus_.assign(static_cast<size_t>(num_workers), options_.base_tau);
}

void FedProxStrategy::PlanRound(int64_t /*round*/,
                                std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(static_cast<int>(plans->size()), num_workers_);
  for (int n = 0; n < num_workers_; ++n) {
    WorkerRoundPlan& plan = (*plans)[static_cast<size_t>(n)];
    plan = WorkerRoundPlan{};
    plan.tau = taus_[static_cast<size_t>(n)];
    plan.proximal_mu = options_.mu;
  }
}

void FedProxStrategy::ObserveRound(int64_t /*round*/,
                                   const RoundObservation& observation) {
  FEDMP_CHECK_EQ(static_cast<int>(observation.comp_times.size()),
                 num_workers_);
  // Update the per-iteration compute estimate from this round's compute
  // time and the iteration count each worker actually ran.
  std::vector<double> estimates;
  for (int n = 0; n < num_workers_; ++n) {
    const size_t i = static_cast<size_t>(n);
    if (!std::isfinite(observation.comp_times[i])) continue;
    const double per_iter =
        observation.comp_times[i] / static_cast<double>(taus_[i]);
    per_iter_seconds_[i] =
        per_iter_seconds_[i] <= 0.0
            ? per_iter
            : options_.ema * per_iter +
                  (1.0 - options_.ema) * per_iter_seconds_[i];
    estimates.push_back(per_iter_seconds_[i]);
  }
  if (estimates.empty()) return;
  // Give every worker the compute budget the MEDIAN worker spends on
  // base_tau iterations: slow workers do fewer iterations, fast ones more.
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2,
                   estimates.end());
  const double budget = estimates[estimates.size() / 2] *
                        static_cast<double>(options_.base_tau);
  for (int n = 0; n < num_workers_; ++n) {
    const size_t i = static_cast<size_t>(n);
    if (per_iter_seconds_[i] <= 0.0) continue;
    const int64_t tau =
        static_cast<int64_t>(std::llround(budget / per_iter_seconds_[i]));
    taus_[i] = std::clamp(tau, options_.min_tau, options_.max_tau);
  }
}

}  // namespace fedmp::fl
