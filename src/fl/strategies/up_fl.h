#ifndef FEDMP_FL_STRATEGIES_UP_FL_H_
#define FEDMP_FL_STRATEGIES_UP_FL_H_

#include <memory>
#include <vector>

#include "bandit/discounted_ucb.h"
#include "fl/strategy.h"

namespace fedmp::fl {

// UP-FL baseline (uniform pruning, Jiang et al. [15] style): one pruning
// ratio for ALL workers per round. The ratio may vary across rounds; a
// single discounted-UCB learner over a fixed ratio grid picks it from the
// observed global progress per unit round time. Heterogeneity-oblivious:
// weak workers still gate every round.
struct UpFlOptions {
  std::vector<double> ratio_grid = {0.0, 0.1, 0.2, 0.3, 0.4,
                                    0.5, 0.6, 0.7, 0.8};
  double lambda = 0.95;
};

class UpFlStrategy : public Strategy {
 public:
  explicit UpFlStrategy(const UpFlOptions& options = {});

  std::string Name() const override { return "UP-FL"; }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t round,
                    const RoundObservation& observation) override;

  double last_ratio() const { return last_ratio_; }

 private:
  UpFlOptions options_;
  std::unique_ptr<bandit::DiscountedUcb> ucb_;
  int num_workers_ = 0;
  double last_ratio_ = 0.0;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGIES_UP_FL_H_
