#ifndef FEDMP_FL_STRATEGIES_FLEXCOM_H_
#define FEDMP_FL_STRATEGIES_FLEXCOM_H_

#include <vector>

#include "fl/strategy.h"

namespace fedmp::fl {

// FlexCom baseline [13]: heterogeneous workers compress their UPLOADED
// updates to different levels (top-k sparsification) so communication time
// equalizes; the full model is still trained locally, so computation
// heterogeneity remains. Compression levels adapt online from observed
// communication times.
struct FlexComOptions {
  double max_compress = 0.9;
  // EMA smoothing of per-worker uncompressed comm-time estimates.
  double ema = 0.5;
};

class FlexComStrategy : public Strategy {
 public:
  explicit FlexComStrategy(const FlexComOptions& options = {});

  std::string Name() const override { return "FlexCom"; }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t round,
                    const RoundObservation& observation) override;

  double compress_for(int worker) const {
    return compress_[static_cast<size_t>(worker)];
  }

 private:
  FlexComOptions options_;
  int num_workers_ = 0;
  // Per-worker estimated comm seconds at compression 0.
  std::vector<double> full_comm_seconds_;
  std::vector<double> compress_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGIES_FLEXCOM_H_
