#ifndef FEDMP_FL_STRATEGIES_SYN_FL_H_
#define FEDMP_FL_STRATEGIES_SYN_FL_H_

#include "fl/strategy.h"

namespace fedmp::fl {

// Syn-FL baseline [5] (FedAvg): the full model is transmitted and trained
// by every worker; the PS aggregates after all workers finish.
class SynFlStrategy : public Strategy {
 public:
  SynFlStrategy() = default;

  std::string Name() const override { return "Syn-FL"; }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t, const RoundObservation&) override {}

  // Used as "Asyn-FL" [43] under the asynchronous trainer.
  bool SupportsAsync() const override { return true; }
  WorkerRoundPlan PlanWorker(int64_t, int) override {
    return WorkerRoundPlan{};
  }
  void ObserveWorker(int64_t, int, double, double, double) override {}

 private:
  int num_workers_ = 0;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGIES_SYN_FL_H_
