#include "fl/strategies/syn_fl.h"

#include "common/logging.h"

namespace fedmp::fl {

void SynFlStrategy::Initialize(int num_workers, uint64_t /*seed*/) {
  FEDMP_CHECK_GT(num_workers, 0);
  num_workers_ = num_workers;
}

void SynFlStrategy::PlanRound(int64_t /*round*/,
                              std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(static_cast<int>(plans->size()), num_workers_);
  for (auto& plan : *plans) plan = WorkerRoundPlan{};
}

}  // namespace fedmp::fl
