#ifndef FEDMP_FL_STRATEGIES_FEDMP_STRATEGY_H_
#define FEDMP_FL_STRATEGIES_FEDMP_STRATEGY_H_

#include <memory>
#include <vector>

#include "bandit/eucb.h"
#include "bandit/reward.h"
#include "fl/strategy.h"

namespace fedmp::fl {

// The paper's method: one E-UCB agent per worker adaptively chooses that
// worker's pruning ratio from completion-time feedback (Algorithm 1 +
// Eq. 8), aggregated with R2SP.
struct FedMpOptions {
  bandit::EucbOptions eucb;
  bandit::RewardOptions reward;
  // Fig. 7 ablation: switch the aggregation scheme.
  SyncScheme sync = SyncScheme::kR2SP;
  // Ablation: replace the Eq. 8 reward with the naive 1/T reward.
  bool time_only_reward = false;
  // §III-C memory optimization: store residual models 8-bit quantized.
  bool quantize_residuals = false;
  // Executed-ratio grid. E-UCB samples a continuous arm, but every distinct
  // ratio materializes a distinct sub-model spec, which defeats the
  // workers' model-reuse cache (structured widths quantize at 1/W anyway).
  // The executed ratio is snapped to this grid; the bandit's history keeps
  // the raw arm, consistent with Algorithm 1 treating all arms inside the
  // chosen region alike and with theta being the pruning granularity.
  // < 0: snap to eucb.theta (default). 0 disables snapping.
  double ratio_quantum = -1.0;
};

class FedMpStrategy : public Strategy {
 public:
  explicit FedMpStrategy(const FedMpOptions& options = {});

  std::string Name() const override;
  SyncScheme sync_scheme() const override { return options_.sync; }
  bool quantize_residuals() const override {
    return options_.quantize_residuals;
  }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t round,
                    const RoundObservation& observation) override;

  // Asynchronous FedMP (Algorithm 2): each arriving worker's agent is
  // consulted/updated individually.
  bool SupportsAsync() const override { return true; }
  WorkerRoundPlan PlanWorker(int64_t round, int worker) override;
  void ObserveWorker(int64_t round, int worker, double completion_time,
                     double mean_time, double delta_loss) override;

  // Introspection for tests and the overhead bench.
  const bandit::EucbAgent& agent(int worker) const {
    return *agents_[static_cast<size_t>(worker)];
  }

  // The theta-grid snap applied to executed ratios (identity when
  // ratio_quantum is 0). Exposed for the cache regression tests.
  double SnapRatio(double ratio) const;

 private:
  FedMpOptions options_;
  std::vector<std::unique_ptr<bandit::EucbAgent>> agents_;
  std::vector<double> last_ratios_;
};

// Ships every worker the same fixed-ratio pruned model every round. Used by
// the Fig. 2 (accuracy vs ratio) and Fig. 5 (round time vs ratio) benches.
class FixedRatioStrategy : public Strategy {
 public:
  explicit FixedRatioStrategy(double ratio,
                              SyncScheme sync = SyncScheme::kR2SP);

  std::string Name() const override;
  SyncScheme sync_scheme() const override { return sync_; }
  void Initialize(int num_workers, uint64_t seed) override;
  void PlanRound(int64_t round, std::vector<WorkerRoundPlan>* plans) override;
  void ObserveRound(int64_t /*round*/, const RoundObservation&) override {}

 private:
  double ratio_;
  SyncScheme sync_;
  int num_workers_ = 0;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGIES_FEDMP_STRATEGY_H_
