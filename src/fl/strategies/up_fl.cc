#include "fl/strategies/up_fl.h"

#include "common/logging.h"

namespace fedmp::fl {

UpFlStrategy::UpFlStrategy(const UpFlOptions& options) : options_(options) {
  FEDMP_CHECK(!options_.ratio_grid.empty());
}

void UpFlStrategy::Initialize(int num_workers, uint64_t seed) {
  FEDMP_CHECK_GT(num_workers, 0);
  num_workers_ = num_workers;
  ucb_ = std::make_unique<bandit::DiscountedUcb>(
      static_cast<int64_t>(options_.ratio_grid.size()), options_.lambda,
      seed);
}

void UpFlStrategy::PlanRound(int64_t /*round*/,
                             std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(static_cast<int>(plans->size()), num_workers_);
  const int64_t arm = ucb_->SelectArm();
  last_ratio_ = options_.ratio_grid[static_cast<size_t>(arm)];
  for (auto& plan : *plans) {
    plan = WorkerRoundPlan{};
    plan.pruning_ratio = last_ratio_;  // identical for every worker
  }
}

void UpFlStrategy::ObserveRound(int64_t /*round*/,
                                const RoundObservation& observation) {
  // Convergence progress per unit of (straggler-bound) round time.
  FEDMP_CHECK_GT(observation.round_time, 0.0);
  ucb_->Observe(observation.global_delta_loss / observation.round_time);
}

}  // namespace fedmp::fl
