#include "fl/strategies/flexcom.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace fedmp::fl {

FlexComStrategy::FlexComStrategy(const FlexComOptions& options)
    : options_(options) {
  FEDMP_CHECK(options.max_compress >= 0.0 && options.max_compress < 1.0);
}

void FlexComStrategy::Initialize(int num_workers, uint64_t /*seed*/) {
  FEDMP_CHECK_GT(num_workers, 0);
  num_workers_ = num_workers;
  full_comm_seconds_.assign(static_cast<size_t>(num_workers), 0.0);
  compress_.assign(static_cast<size_t>(num_workers), 0.0);
}

void FlexComStrategy::PlanRound(int64_t /*round*/,
                                std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(static_cast<int>(plans->size()), num_workers_);
  for (int n = 0; n < num_workers_; ++n) {
    WorkerRoundPlan& plan = (*plans)[static_cast<size_t>(n)];
    plan = WorkerRoundPlan{};
    plan.compress_ratio = compress_[static_cast<size_t>(n)];
  }
}

void FlexComStrategy::ObserveRound(int64_t /*round*/,
                                   const RoundObservation& observation) {
  FEDMP_CHECK_EQ(static_cast<int>(observation.comm_times.size()),
                 num_workers_);
  // Back out what each worker's comm time would have been uncompressed
  // (uploads scale with 1 - compress; downloads are never compressed, so
  // this slightly overestimates — a safe direction for the adaptation).
  double fastest = 0.0;
  bool have_any = false;
  for (int n = 0; n < num_workers_; ++n) {
    const size_t i = static_cast<size_t>(n);
    if (!std::isfinite(observation.comm_times[i])) continue;
    const double scale = 1.0 - compress_[i];
    const double full = observation.comm_times[i] / std::max(scale, 0.1);
    full_comm_seconds_[i] =
        full_comm_seconds_[i] <= 0.0
            ? full
            : options_.ema * full + (1.0 - options_.ema) *
                                        full_comm_seconds_[i];
    if (!have_any || full_comm_seconds_[i] < fastest) {
      fastest = full_comm_seconds_[i];
      have_any = true;
    }
  }
  if (!have_any) return;
  // Compress each worker so its comm time approaches the fastest worker's.
  for (int n = 0; n < num_workers_; ++n) {
    const size_t i = static_cast<size_t>(n);
    if (full_comm_seconds_[i] <= 0.0) continue;
    const double target = 1.0 - fastest / full_comm_seconds_[i];
    compress_[i] = Clamp(target, 0.0, options_.max_compress);
  }
}

}  // namespace fedmp::fl
