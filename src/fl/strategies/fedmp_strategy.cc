#include "fl/strategies/fedmp_strategy.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"
#include "obs/sampling.h"
#include "obs/trace.h"

namespace fedmp::fl {

namespace {
// Eq. (8)'s reward is a ratio of a loss decrease to a time gap and is
// unbounded in both directions; UCB's padding term assumes rewards of unit
// scale. Squash monotonically into (-1, 1) — ordering (what arm selection
// uses) is preserved.
double SquashReward(double r) { return r / (1.0 + std::fabs(r)); }

// Telemetry hooks for the bandit loop. Both are emitted from serial driver
// code, so the worker-track event order is thread-count-invariant. Both
// respect the per-round trace-sampling plan: these are per-worker events,
// and at fleet scale two unsampled events per worker per round are an
// O(fleet) telemetry term (sampling gates emission only — arm selection
// never consumes these bits, so the budget cannot perturb training).
//
// eucb_select carries the full decision context (chosen leaf, discounted
// N_k / mean / padding / UCB, total discounted pulls, exploration
// coefficient) so the decision audit (obs/analysis/decision_audit.h) can
// re-derive every score from the logged fields alone. Non-finite values
// (never-pulled leaves have infinite UCB) render as JSON null.
void NoteSelect(int64_t round, int worker, int num_workers,
                const bandit::EucbAgent& agent, double executed_ratio) {
  if (!obs::Enabled()) return;
  if (!obs::ShouldTraceWorker(round, worker, num_workers)) return;
  const bandit::SelectionAudit& audit = agent.last_audit();
  obs::Args args = {{"worker", worker}, {"ratio", executed_ratio}};
  if (audit.valid) {
    args.emplace_back("arm_ratio", audit.ratio);
    args.emplace_back("leaf_lo", audit.leaf_lo);
    args.emplace_back("leaf_hi", audit.leaf_hi);
    args.emplace_back("count", audit.count);
    args.emplace_back("mean", audit.mean);
    args.emplace_back("padding", audit.padding);
    args.emplace_back("ucb", audit.ucb);
    args.emplace_back("total", audit.total);
    args.emplace_back("coef", agent.options().exploration_coef);
    args.emplace_back("leaves", audit.leaves);
    args.emplace_back("depth", audit.depth);
  } else {
    args.emplace_back("leaves",
                      static_cast<int>(agent.tree().num_leaves()));
    args.emplace_back("depth", agent.tree().MaxDepth());
  }
  obs::InstantEvent("eucb_select", obs::WorkerTrack(worker),
                    std::move(args));
}

void NoteReward(int64_t round, int worker, int num_workers, double reward) {
  if (!obs::Enabled()) return;
  if (!obs::ShouldTraceWorker(round, worker, num_workers)) return;
  obs::InstantEvent("eucb_reward", obs::WorkerTrack(worker),
                    {{"worker", worker}, {"reward", reward}});
}
}  // namespace

FedMpStrategy::FedMpStrategy(const FedMpOptions& options)
    : options_(options) {}

std::string FedMpStrategy::Name() const {
  if (options_.sync == SyncScheme::kBSP) return "FedMP-BSP";
  if (options_.time_only_reward) return "FedMP-timeReward";
  return "FedMP";
}

void FedMpStrategy::Initialize(int num_workers, uint64_t seed) {
  FEDMP_CHECK_GT(num_workers, 0);
  agents_.clear();
  Rng seeder(seed);
  for (int n = 0; n < num_workers; ++n) {
    agents_.push_back(
        std::make_unique<bandit::EucbAgent>(options_.eucb, seeder.NextU64()));
  }
  last_ratios_.assign(static_cast<size_t>(num_workers), 0.0);
}

double FedMpStrategy::SnapRatio(double ratio) const {
  const double quantum = options_.ratio_quantum < 0.0
                             ? options_.eucb.theta
                             : options_.ratio_quantum;
  if (quantum <= 0.0) return ratio;
  double snapped = std::round(ratio / quantum) * quantum;
  // Keep the executed ratio inside the arm domain [lo, hi).
  snapped = std::min(snapped, options_.eucb.ratio_hi - quantum);
  return std::max(snapped, options_.eucb.ratio_lo);
}

void FedMpStrategy::PlanRound(int64_t round,
                              std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(plans->size(), agents_.size());
  for (size_t n = 0; n < agents_.size(); ++n) {
    const double ratio = SnapRatio(agents_[n]->SelectRatio());
    NoteSelect(round, static_cast<int>(n),
               static_cast<int>(agents_.size()), *agents_[n], ratio);
    last_ratios_[n] = ratio;
    (*plans)[n] = WorkerRoundPlan{};
    (*plans)[n].pruning_ratio = ratio;
  }
}

void FedMpStrategy::ObserveRound(int64_t round,
                                 const RoundObservation& observation) {
  FEDMP_CHECK_EQ(observation.completion_times.size(), agents_.size());
  // Mean completion time over workers that finished (Eq. 8's denominator).
  std::vector<double> finite;
  for (size_t n = 0; n < agents_.size(); ++n) {
    if (std::isfinite(observation.completion_times[n])) {
      finite.push_back(observation.completion_times[n]);
    }
  }
  const double mean_time = finite.empty() ? 1.0 : Mean(finite);
  for (size_t n = 0; n < agents_.size(); ++n) {
    double reward = 0.0;
    if (std::isfinite(observation.completion_times[n])) {
      if (options_.time_only_reward) {
        reward = bandit::TimeOnlyReward(observation.completion_times[n]);
      } else {
        reward = bandit::FedMpReward(observation.delta_losses[n],
                                     observation.completion_times[n],
                                     mean_time, options_.reward);
      }
    }
    // Crashed workers observe zero reward for the pulled arm.
    const double squashed = SquashReward(reward);
    NoteReward(round, static_cast<int>(n),
               static_cast<int>(agents_.size()), squashed);
    agents_[n]->ObserveReward(squashed);
  }
}

WorkerRoundPlan FedMpStrategy::PlanWorker(int64_t round, int worker) {
  FEDMP_CHECK(worker >= 0 &&
              worker < static_cast<int>(agents_.size()));
  WorkerRoundPlan plan;
  plan.pruning_ratio =
      SnapRatio(agents_[static_cast<size_t>(worker)]->SelectRatio());
  NoteSelect(round, worker, static_cast<int>(agents_.size()),
             *agents_[static_cast<size_t>(worker)], plan.pruning_ratio);
  last_ratios_[static_cast<size_t>(worker)] = plan.pruning_ratio;
  return plan;
}

void FedMpStrategy::ObserveWorker(int64_t round, int worker,
                                  double completion_time, double mean_time,
                                  double delta_loss) {
  FEDMP_CHECK(worker >= 0 &&
              worker < static_cast<int>(agents_.size()));
  double reward = 0.0;
  if (std::isfinite(completion_time)) {
    reward = options_.time_only_reward
                 ? bandit::TimeOnlyReward(completion_time)
                 : bandit::FedMpReward(delta_loss, completion_time,
                                       mean_time, options_.reward);
  }
  const double squashed = SquashReward(reward);
  NoteReward(round, worker, static_cast<int>(agents_.size()), squashed);
  agents_[static_cast<size_t>(worker)]->ObserveReward(squashed);
}

FixedRatioStrategy::FixedRatioStrategy(double ratio, SyncScheme sync)
    : ratio_(ratio), sync_(sync) {
  FEDMP_CHECK(ratio >= 0.0 && ratio < 1.0);
}

std::string FixedRatioStrategy::Name() const {
  return StrFormat("Fixed(%.2f)", ratio_);
}

void FixedRatioStrategy::Initialize(int num_workers, uint64_t /*seed*/) {
  num_workers_ = num_workers;
}

void FixedRatioStrategy::PlanRound(int64_t /*round*/,
                                   std::vector<WorkerRoundPlan>* plans) {
  FEDMP_CHECK_EQ(static_cast<int>(plans->size()), num_workers_);
  for (auto& plan : *plans) {
    plan = WorkerRoundPlan{};
    plan.pruning_ratio = ratio_;
  }
}

}  // namespace fedmp::fl
