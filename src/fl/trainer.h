#ifndef FEDMP_FL_TRAINER_H_
#define FEDMP_FL_TRAINER_H_

#include <limits>
#include <memory>

#include "data/partition.h"
#include "data/task_zoo.h"
#include "edge/cluster.h"
#include "edge/cost_model.h"
#include "edge/fault.h"
#include "fl/round_log.h"
#include "fl/server.h"
#include "fl/strategy.h"
#include "fl/worker.h"

namespace fedmp::fl {

struct TrainerOptions {
  int64_t max_rounds = 200;
  // Stop once the simulated clock passes this (Table III time budgets).
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  // Stop early once the target metric is reached (time-to-accuracy runs);
  // negative disables.
  double stop_at_accuracy = -1.0;
  double stop_at_perplexity = -1.0;
  int64_t eval_every = 2;  // rounds between evaluations
  int64_t eval_batch_size = 50;
  int64_t eval_max_batches = -1;
  edge::DeadlinePolicy deadline;
  edge::CostModelOptions cost;
  // Legacy knob: per-worker per-round crash probability. Routed through the
  // deterministic FaultPlan below (equivalent to faults.crash_prob).
  double crash_prob = 0.0;
  // Deterministic fault injection (crash/rejoin, straggle, update
  // loss/duplication/corruption — see edge/fault.h). faults.seed == 0
  // derives the failure trace from `seed`, so same-seed runs replay the
  // same faults.
  edge::FaultPlanOptions faults;
  // > 0: whenever some prunable unit has not been part of any accepted
  // update for this many rounds, the next round ships the FULL model to
  // every worker, bounding per-parameter staleness under R2SP (no parameter
  // silently stops training). 0 disables.
  int64_t max_param_staleness = 0;
  uint64_t seed = 1;
  bool verbose = false;
  // Scale-out knobs for large fleets (DESIGN.md "Hierarchical aggregation").
  // Both only affect the pipelined engine; the global model is bit-identical
  // at ANY setting — fog partials merge along the same canonical reduction
  // tree the flat fold uses, and the window only reorders task completion,
  // which the tree absorbs.
  struct ScaleOptions {
    // Number of regional (fog) aggregators the worker-slot range is split
    // across. <= 1 keeps the flat single-aggregator topology.
    int fog_fan_out = 1;
    // Cap on simultaneously in-flight worker tasks. Each in-flight worker
    // holds its sub-model + upload, so the cap bounds a round's peak memory
    // at O(max_inflight x model) instead of O(fleet x model) — this is what
    // makes 10k-worker rounds tractable. 0 = unbounded (submit everything
    // up front, the PR-6 behavior).
    int max_inflight = 0;
    // Requested PS shard count (fl/ps_shard.h): how many per-range owners
    // the slot range is split across for streaming-lock granularity and the
    // parallel Finish() fold. 0 = auto (FEDMP_PS_SHARDS env var, else the
    // pool's lane count); 1 = the unsharded single-lock serial-tail path.
    int ps_shards = 0;
  };
  ScaleOptions scale;
  // Execution lanes for the parallel engine (per-worker rounds + kernels).
  // 0 = auto (FEDMP_THREADS env var, else hardware_concurrency); 1 runs the
  // exact serial path. The global model is bit-identical at any value —
  // see DESIGN.md "Threading model".
  int num_threads = 0;
};

// The synchronous FedMP framework engine (Fig. 1): per round it runs
//   (1) strategy planning + distributed model pruning on the PS,
//   (2) real local SGD on every worker's shard,
//   (3) deadline-based straggler handling,
//   (4) R2SP/BSP aggregation,
// while advancing the simulated clock by the straggler-bound round time
// from the cost model. Learning is real; time is simulated (DESIGN.md §5).
class Trainer {
 public:
  Trainer(const data::FlTask* task,
          std::vector<edge::DeviceProfile> devices,
          data::Partition partition, std::unique_ptr<Strategy> strategy,
          const TrainerOptions& options);

  // Streaming-partition mode: workers materialize their shards on demand
  // from the view (see data::PartitionView / Worker's view constructor), so
  // the engine never stores O(fleet) index vectors — the 100k-worker
  // configuration. Deterministic run to run, but not bit-compatible with
  // the eager-Partition constructor (the per-round loader draws shift each
  // worker's rng stream).
  Trainer(const data::FlTask* task,
          std::vector<edge::DeviceProfile> devices,
          std::shared_ptr<const data::PartitionView> partition,
          std::unique_ptr<Strategy> strategy, const TrainerOptions& options);

  // Runs to completion and returns the per-round log.
  RoundLog Run();

  const ParameterServer& server() const { return *server_; }
  Strategy& strategy() { return *strategy_; }

 private:
  // Shared constructor phases around the mode-specific worker build: pool +
  // telemetry + PS + strategy init, then fault plan + coverage + manifest.
  void InitBeforeWorkers();
  void InitAfterWorkers();

  const data::FlTask* task_;
  std::vector<edge::DeviceProfile> devices_;
  std::unique_ptr<Strategy> strategy_;
  TrainerOptions options_;
  std::unique_ptr<ParameterServer> server_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Keeps the streaming view alive for the workers that read it.
  std::shared_ptr<const data::PartitionView> partition_view_;
  Rng rng_;
  edge::FaultPlan fault_plan_;
  ParameterCoverage coverage_;
  bool force_full_refresh_ = false;
};

// Convenience: builds workers over an IID partition and runs.
RoundLog RunFederated(const data::FlTask& task,
                      const std::vector<edge::DeviceProfile>& devices,
                      std::unique_ptr<Strategy> strategy,
                      const TrainerOptions& options);

namespace internal {
// Shared between the sync and async engines (and their tests).
edge::FaultPlan ResolveFaultPlan(const TrainerOptions& options,
                                 int num_workers);
void CorruptPayload(nn::TensorList* payload);
// Records the run manifest (build sha, engine, seed, thread count, hot-path
// toggle states) into the telemetry run-info block, so every trace ships
// with the context needed to reproduce it. No-op when telemetry is off.
void PushRunManifest(const char* engine, const std::string& strategy,
                     const TrainerOptions& options, int num_workers);
}  // namespace internal

}  // namespace fedmp::fl

#endif  // FEDMP_FL_TRAINER_H_
