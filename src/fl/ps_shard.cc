#include "fl/ps_shard.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/mem_info.h"
#include "common/range_tree.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

namespace {

std::atomic<int> g_ps_shards_override{0};  // > 0 forces the count (tests)
std::atomic<int> g_ps_shards_env{-1};      // -1 = env not read yet

int PsShardsEnv() {
  const int cached = g_ps_shards_env.load(std::memory_order_relaxed);
  if (cached >= 0) return cached;
  int parsed = 0;
  if (const char* env = std::getenv("FEDMP_PS_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) parsed = v;
  }
  g_ps_shards_env.store(parsed, std::memory_order_relaxed);
  return parsed;
}

}  // namespace

int ResolvePsShards(int requested, int num_slots) {
  if (num_slots < 1) num_slots = 1;
  int n = g_ps_shards_override.load(std::memory_order_relaxed);
  if (n <= 0) n = PsShardsEnv();
  if (n <= 0) n = requested;
  if (n <= 0) n = ThreadPool::Global().num_threads();
  return std::clamp(n, 1, num_slots);
}

void SetPsShards(int n) {
  g_ps_shards_override.store(n, std::memory_order_relaxed);
}

PsShardSet::PsShardSet(int num_slots, int num_shards)
    : num_slots_(num_slots) {
  FEDMP_CHECK_GT(num_slots, 0);
  if (num_shards < 1) num_shards = 1;
  if (num_shards > num_slots) num_shards = num_slots;
  slices_ = CanonicalRangeSlices(num_slots, num_shards);
  locks_ = std::make_unique<std::mutex[]>(slices_.size());
}

int PsShardSet::shard_of(int64_t slot) const {
  return SliceOf(slices_, slot);
}

ShardPartial ParallelShardFold(
    const PsShardSet& shards,
    const std::function<ShardPartial(int shard, int64_t lo, int64_t hi)>&
        fold_shard) {
  const int S = shards.num_shards();
  if (obs::Enabled()) {
    static obs::Gauge* count = obs::GetGauge("fl.ps.shards");
    count->Set(static_cast<double>(S));
  }
  if (S == 1) {
    // The unsharded path: fold inline on the caller, no pool traffic and no
    // extra spans — byte-for-byte today's serial tail.
    const auto [lo, hi] = shards.shard_range(0);
    ShardPartial out = fold_shard(0, lo, hi);
    if (obs::Enabled()) {
      static obs::Gauge* lanes = obs::GetGauge("fl.ps.fold_lanes");
      lanes->Set(1.0);
    }
    return out;
  }

  // The top tree: the canonical descent from [0, num_slots) down to shard
  // boundaries. Leaves are shards; each inner node collapses the moment
  // both children are resolved, exactly like StreamingAggregator's bubble-
  // up, so merge association never depends on completion order.
  struct TopNode {
    int64_t lo = 0, hi = 0;
    int parent = -1, left = -1, right = -1;
    ShardPartial part;
    bool resolved = false;
  };
  std::vector<TopNode> top;
  top.reserve(static_cast<size_t>(2 * S - 1));
  std::vector<int> leaf_of_shard(static_cast<size_t>(S), -1);
  std::function<int(int64_t, int64_t, int)> build = [&](int64_t lo, int64_t hi,
                                                        int parent) -> int {
    const int id = static_cast<int>(top.size());
    top.emplace_back();
    top[static_cast<size_t>(id)].lo = lo;
    top[static_cast<size_t>(id)].hi = hi;
    top[static_cast<size_t>(id)].parent = parent;
    const int s = shards.shard_of(lo);
    if (shards.shard_range(s) == std::make_pair(lo, hi)) {
      leaf_of_shard[static_cast<size_t>(s)] = id;
      return id;
    }
    const int64_t mid = CanonicalSplit(lo, hi);
    const int left = build(lo, mid, id);
    const int right = build(mid, hi, id);
    top[static_cast<size_t>(id)].left = left;
    top[static_cast<size_t>(id)].right = right;
    return id;
  };
  const int root = build(0, shards.num_slots(), -1);

  std::vector<ShardPartial> parts(static_cast<size_t>(S));
  std::mutex lanes_mu;
  std::vector<int> lanes_seen;
  TaskSet tasks;
  for (int s = 0; s < S; ++s) {
    tasks.Submit(s, [&, s] {
      const auto [lo, hi] = shards.shard_range(s);
      const int lane = ThreadPool::CurrentLane();
      // Pool-track span: visible in the Chrome trace (where overlap across
      // lanes can be seen), excluded from the deterministic JSONL export —
      // which shard runs on which lane is an OS-scheduling fact.
      obs::TrackScope track(obs::PoolTrack(lane));
      {
        OBS_SPAN("ps_shard_fold",
                 {{"shard", s}, {"lo", lo}, {"hi", hi}, {"lane", lane}});
        parts[static_cast<size_t>(s)] = fold_shard(s, lo, hi);
      }
      if (obs::Enabled()) {
        // Mid-round VmHWM sample: the shard-fold boundary is where fog
        // partials are live, i.e. where the round's memory peaks.
        static obs::Gauge* peak = obs::GetGauge("fl.scale.peak_rss_bytes");
        peak->Set(static_cast<double>(PeakRssBytes()));
      }
      std::lock_guard<std::mutex> lock(lanes_mu);
      if (std::find(lanes_seen.begin(), lanes_seen.end(), lane) ==
          lanes_seen.end()) {
        lanes_seen.push_back(lane);
      }
    });
  }

  // The caller is the serial tail: it merges the top tree in completion
  // order while the remaining shard folds are still running (DrainNext
  // work-shares, so it may also execute queued folds itself).
  int64_t tag = 0;
  while (tasks.DrainNext(&tag)) {
    const int leaf = leaf_of_shard[static_cast<size_t>(tag)];
    top[static_cast<size_t>(leaf)].part =
        std::move(parts[static_cast<size_t>(tag)]);
    top[static_cast<size_t>(leaf)].resolved = true;
    int id = top[static_cast<size_t>(leaf)].parent;
    while (id >= 0) {
      TopNode& node = top[static_cast<size_t>(id)];
      TopNode& left = top[static_cast<size_t>(node.left)];
      TopNode& right = top[static_cast<size_t>(node.right)];
      if (!left.resolved || !right.resolved) break;
      if (left.part.sum.empty()) {
        node.part.sum = std::move(right.part.sum);
      } else {
        node.part.sum = std::move(left.part.sum);
        if (!right.part.sum.empty()) {
          nn::AxpyLists(node.part.sum, 1.0f, right.part.sum);
        }
      }
      left.part.sum.clear();
      right.part.sum.clear();
      node.part.participants =
          left.part.participants + right.part.participants;
      node.resolved = true;
      id = node.parent;
    }
  }
  FEDMP_CHECK(top[static_cast<size_t>(root)].resolved);
  if (obs::Enabled()) {
    static obs::Gauge* lanes = obs::GetGauge("fl.ps.fold_lanes");
    lanes->Set(static_cast<double>(lanes_seen.size()));
  }
  return std::move(top[static_cast<size_t>(root)].part);
}

}  // namespace fedmp::fl
