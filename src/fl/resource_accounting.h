#ifndef FEDMP_FL_RESOURCE_ACCOUNTING_H_
#define FEDMP_FL_RESOURCE_ACCOUNTING_H_

#include <cstdint>

#include "nn/model_spec.h"
#include "nn/tensor_ops.h"
#include "obs/ledger.h"
#include "pruning/mask.h"

// Bridges the FL layer's round plans to the obs ledger: turns (sub-model
// spec, mask, row count, transport flags) into an exact obs::WorkerResources
// entry. Everything here is a pure function of deterministic round state —
// no clocks, no RNG — so the resulting ledger totals are bit-identical at
// any thread count.
namespace fedmp::fl {

// Per-run constants of the dense (unpruned) global model, computed once so
// the per-worker hot path never re-walks the dense spec.
struct ResourceParams {
  int64_t dense_params = 0;             // global NumParams
  int64_t dense_macs_fwd_per_sample = 0;
  int64_t dense_macs_bwd_per_sample = 0;
  int64_t residual_bytes_f32 = 0;        // full-shape float32 residual
  int64_t residual_bytes_quantized = 0;  // same, through Quantize8
};

// `weights` are the global model tensors (residual models share their
// shapes; the quantized size depends on tensor count and ndims, not
// values).
ResourceParams MakeResourceParams(const nn::ModelSpec& spec,
                                  const nn::TensorList& weights);

// Wire encoding of a prune mask: one bit per original unit of each
// prunable layer (bitmap), plus an 8-byte per-layer header (layer index +
// width). Non-prunable layers are implied by the spec and cost nothing.
int64_t MaskWireBytes(const pruning::PruneMask& mask);

// Exact resources for one worker round-trip:
//   flops       analytic forward/backward MACs of `sub_spec` x `rows`
//   bytes_down  dense f32 sub weights + mask encoding (mask bytes only
//               when the worker is actually pruned; FedAvg sends no mask)
//   bytes_up    dense f32 sub weights, shrunk by the strategy's upload
//               compression (same (1-ratio)*1.1 convention as the cost
//               model's effective-byte accounting)
//   residual    PS-side residual storage for pruned workers (quantized
//               when the strategy quantizes residuals)
//   dense_*     the unpruned no-compression baseline for the same rows,
//               so savings ratios fall out of the round rollup
// `rows` is the total training examples the worker will process (see
// nn::PlannedLoaderRows — partial tail batches included).
obs::WorkerResources ComputeWorkerResources(const ResourceParams& base,
                                            const nn::ModelSpec& sub_spec,
                                            const pruning::PruneMask& mask,
                                            int64_t rows,
                                            double compress_ratio,
                                            bool quantize_residuals);

// FEDMP_LEDGER_CHECK=1: the trainers arm the kernel MAC counters
// (obs::SetMacCountingEnabled) and FEDMP_CHECK the analytic FLOP count
// against the instrumented kernel count on every worker dispatch. Debug
// mode — the counter write in every matmul makes training a few percent
// slower. Read once at first use.
bool LedgerCheckEnabled();

}  // namespace fedmp::fl

#endif  // FEDMP_FL_RESOURCE_ACCOUNTING_H_
