#include "fl/hierarchy.h"

#include <functional>

#include "common/logging.h"
#include "common/range_tree.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

HierarchicalAggregator::HierarchicalAggregator(
    const nn::ModelSpec& spec, const nn::TensorList& global_weights,
    int num_slots, SyncScheme scheme, bool quantize_residuals, int fan_out)
    : scheme_(scheme), num_slots_(num_slots) {
  FEDMP_CHECK_GT(num_slots, 0);
  if (fan_out < 1) fan_out = 1;
  slices_ = CanonicalRangeSlices(num_slots, fan_out);
  fog_admitted_.assign(slices_.size(), 0);
  fogs_.reserve(slices_.size());
  for (const auto& [lo, hi] : slices_) {
    fogs_.push_back(std::make_unique<StreamingAggregator>(
        spec, global_weights, static_cast<int>(hi - lo), scheme,
        quantize_residuals));
  }
}

int HierarchicalAggregator::fog_of(int slot) const {
  return SliceOf(slices_, slot);
}

HierarchicalAggregator::Route HierarchicalAggregator::RouteOf(int slot) {
  const int f = SliceOf(slices_, slot);
  return Route{fogs_[static_cast<size_t>(f)].get(),
               static_cast<int>(slot - slices_[static_cast<size_t>(f)].first)};
}

void HierarchicalAggregator::Accumulate(int slot,
                                        const nn::TensorList& sub_weights,
                                        const pruning::PruneMask& mask) {
  const Route r = RouteOf(slot);
  r.fog->Accumulate(r.local_slot, sub_weights, mask);
}

void HierarchicalAggregator::AccumulateWithResidual(
    int slot, const nn::TensorList& sub_weights,
    const pruning::PruneMask& mask, const nn::TensorList& residual) {
  const Route r = RouteOf(slot);
  r.fog->AccumulateWithResidual(r.local_slot, sub_weights, mask, residual);
}

void HierarchicalAggregator::MarkUnavailable(int slot) {
  const Route r = RouteOf(slot);
  r.fog->MarkUnavailable(r.local_slot);
}

void HierarchicalAggregator::Admit(int slot) {
  const Route r = RouteOf(slot);
  fog_admitted_[static_cast<size_t>(SliceOf(slices_, slot))] += 1;
  r.fog->Admit(r.local_slot);
}

void HierarchicalAggregator::Reject(int slot) {
  const Route r = RouteOf(slot);
  r.fog->Reject(r.local_slot);
}

StreamingAggregator::Result HierarchicalAggregator::Finish() {
  // Collect each fog's partial. The fog tier emits no aggregate telemetry
  // of its own (FinishPartial); each gets a fog_aggregate span so traces
  // attribute the reduction to regions, and the PS-level fold below emits
  // the exact r2sp_aggregate span + counters the flat paths emit.
  std::vector<StreamingAggregator::Result> partials;
  partials.reserve(fogs_.size());
  int total_participants = 0;
  for (size_t f = 0; f < fogs_.size(); ++f) {
    StreamingAggregator::Result partial;
    {
      OBS_SPAN("fog_aggregate",
               {{"fog", static_cast<int>(f)},
                {"lo", static_cast<int>(slices_[f].first)},
                {"hi", static_cast<int>(slices_[f].second)}});
      partial = fogs_[f]->FinishPartial();
    }
    total_participants += partial.participants;
    partials.push_back(std::move(partial));
  }
  FEDMP_CHECK_GT(total_participants, 0) << "aggregation with no participants";
  OBS_SPAN("r2sp_aggregate", {{"scheme", SyncSchemeName(scheme_)},
                              {"updates", total_participants}});
  if (obs::Enabled()) {
    static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
    static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
    aggs->Add(1.0);
    upd->Add(static_cast<double>(total_participants));
  }
  // Fold fog partials by descending the canonical tree until a range lines
  // up with a fog slice: every slice is a tree node (CanonicalRangeSlices
  // only ever splits at CanonicalSplit), so the descent always terminates
  // at slice boundaries and reproduces the flat reduction's association.
  std::function<nn::TensorList(int64_t, int64_t)> fold =
      [&](int64_t lo, int64_t hi) -> nn::TensorList {
    const int f = SliceOf(slices_, lo);
    if (slices_[static_cast<size_t>(f)].first == lo &&
        slices_[static_cast<size_t>(f)].second == hi) {
      return std::move(partials[static_cast<size_t>(f)].sum);
    }
    const int64_t mid = CanonicalSplit(lo, hi);
    nn::TensorList left = fold(lo, mid);
    nn::TensorList right = fold(mid, hi);
    if (left.empty()) return right;
    if (!right.empty()) nn::AxpyLists(left, 1.0f, right);
    return left;
  };
  StreamingAggregator::Result out;
  out.sum = fold(0, num_slots_);
  out.participants = total_participants;
  return out;
}

}  // namespace fedmp::fl
