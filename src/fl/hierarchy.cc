#include "fl/hierarchy.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/range_tree.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::fl {

HierarchicalAggregator::HierarchicalAggregator(
    const nn::ModelSpec& spec, const nn::TensorList& global_weights,
    int num_slots, SyncScheme scheme, bool quantize_residuals, int fan_out,
    int ps_shards)
    : scheme_(scheme), num_slots_(num_slots),
      ps_shards_requested_(ps_shards) {
  FEDMP_CHECK_GT(num_slots, 0);
  if (fan_out < 1) fan_out = 1;
  slices_ = CanonicalRangeSlices(num_slots, fan_out);
  fog_admitted_.assign(slices_.size(), 0);
  fogs_.reserve(slices_.size());
  for (const auto& [lo, hi] : slices_) {
    fogs_.push_back(std::make_unique<StreamingAggregator>(
        spec, global_weights, static_cast<int>(hi - lo), scheme,
        quantize_residuals, ps_shards));
  }
}

int HierarchicalAggregator::fog_of(int slot) const {
  return SliceOf(slices_, slot);
}

HierarchicalAggregator::Route HierarchicalAggregator::RouteOf(int slot) {
  const int f = SliceOf(slices_, slot);
  return Route{fogs_[static_cast<size_t>(f)].get(),
               static_cast<int>(slot - slices_[static_cast<size_t>(f)].first)};
}

void HierarchicalAggregator::Accumulate(int slot,
                                        const nn::TensorList& sub_weights,
                                        const pruning::PruneMask& mask) {
  const Route r = RouteOf(slot);
  r.fog->Accumulate(r.local_slot, sub_weights, mask);
}

void HierarchicalAggregator::AccumulateWithResidual(
    int slot, const nn::TensorList& sub_weights,
    const pruning::PruneMask& mask, const nn::TensorList& residual) {
  const Route r = RouteOf(slot);
  r.fog->AccumulateWithResidual(r.local_slot, sub_weights, mask, residual);
}

void HierarchicalAggregator::MarkUnavailable(int slot) {
  const Route r = RouteOf(slot);
  r.fog->MarkUnavailable(r.local_slot);
}

void HierarchicalAggregator::Admit(int slot) {
  const Route r = RouteOf(slot);
  fog_admitted_[static_cast<size_t>(SliceOf(slices_, slot))] += 1;
  r.fog->Admit(r.local_slot);
}

void HierarchicalAggregator::Reject(int slot) {
  const Route r = RouteOf(slot);
  r.fog->Reject(r.local_slot);
}

StreamingAggregator::Result HierarchicalAggregator::Finish() {
  // Partition the slot range into PS shards — coarser than (or equal to)
  // the fog slices, so the refinement property of CanonicalRangeSlices
  // guarantees every fog nests in exactly one shard. Each shard's fold
  // descends the canonical tree over its own slice, collecting a fog's
  // partial (FinishPartial) the moment the descent reaches its boundary
  // and merging as it unwinds: at most the descent spine — O(log fogs)
  // partials — is live per shard, never all of them at once.
  const int num_fogs_i = num_fogs();
  const int S = ResolvePsShards(
      ps_shards_requested_, std::min(num_fogs_i, num_slots_));
  PsShardSet shards(num_slots_, S);
  auto fold_shard = [&](int shard, int64_t shard_lo,
                        int64_t shard_hi) -> ShardPartial {
    (void)shard;
    std::function<ShardPartial(int64_t, int64_t)> fold =
        [&](int64_t lo, int64_t hi) -> ShardPartial {
      const int f = SliceOf(slices_, lo);
      if (slices_[static_cast<size_t>(f)].first == lo &&
          slices_[static_cast<size_t>(f)].second == hi) {
        StreamingAggregator::Result partial =
            fogs_[static_cast<size_t>(f)]->FinishPartial();
        ShardPartial part;
        part.sum = std::move(partial.sum);
        part.participants = partial.participants;
        return part;
      }
      const int64_t mid = CanonicalSplit(lo, hi);
      ShardPartial left = fold(lo, mid);
      ShardPartial right = fold(mid, hi);
      if (left.sum.empty()) {
        left.sum = std::move(right.sum);
      } else if (!right.sum.empty()) {
        nn::AxpyLists(left.sum, 1.0f, right.sum);
      }
      left.participants += right.participants;
      return left;
    };
    return fold(shard_lo, shard_hi);
  };
  ShardPartial total = ParallelShardFold(shards, fold_shard);
  FEDMP_CHECK_GT(total.participants, 0) << "aggregation with no participants";
  // Logical telemetry is emitted from the calling thread in fixed fog
  // order AFTER the fold — the spans no longer time the per-fog work (the
  // pool-track ps_shard_fold spans carry the wall story now), but the
  // deterministic JSONL export keeps the exact event sequence the serial
  // path produced, at any shard or thread count.
  for (size_t f = 0; f < fogs_.size(); ++f) {
    OBS_SPAN("fog_aggregate",
             {{"fog", static_cast<int>(f)},
              {"lo", static_cast<int>(slices_[f].first)},
              {"hi", static_cast<int>(slices_[f].second)}});
  }
  OBS_SPAN("r2sp_aggregate", {{"scheme", SyncSchemeName(scheme_)},
                              {"updates", total.participants}});
  if (obs::Enabled()) {
    static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
    static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
    aggs->Add(1.0);
    upd->Add(static_cast<double>(total.participants));
  }
  StreamingAggregator::Result out;
  out.sum = std::move(total.sum);
  out.participants = total.participants;
  return out;
}

}  // namespace fedmp::fl
