#ifndef FEDMP_FL_STRATEGY_H_
#define FEDMP_FL_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "fl/aggregation.h"

namespace fedmp::fl {

// One worker's marching orders for a round.
struct WorkerRoundPlan {
  double pruning_ratio = 0.0;   // 0 = ship the full model
  int64_t tau = 0;              // 0 = use the task default
  double compress_ratio = 0.0;  // FlexCom upload sparsification
  double proximal_mu = 0.0;     // FedProx
};

// What the PS observed about a finished round, fed back to the strategy.
struct RoundObservation {
  std::vector<double> completion_times;  // per worker, +inf if crashed
  std::vector<double> comp_times;        // computation component
  std::vector<double> comm_times;        // communication component
  std::vector<double> delta_losses;      // initial - final local loss
  std::vector<bool> participated;        // survived the deadline
  double round_time = 0.0;
  double global_delta_loss = 0.0;        // decrease of mean training loss
};

// A federated-learning method: per-round planning (pruning ratios, local
// iteration counts, compression) plus the feedback loop. One Strategy
// instance drives one training run.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string Name() const = 0;

  // Aggregation rule for sub-models (ignored when nothing is pruned).
  virtual SyncScheme sync_scheme() const { return SyncScheme::kR2SP; }

  // Whether the PS stores residual models 8-bit quantized (§III-C).
  virtual bool quantize_residuals() const { return false; }

  // Called once before round 0.
  virtual void Initialize(int num_workers, uint64_t seed) = 0;

  // Fills `plans` (pre-sized to the worker count) for round `round`.
  virtual void PlanRound(int64_t round,
                         std::vector<WorkerRoundPlan>* plans) = 0;

  // Feedback after round `round` completes.
  virtual void ObserveRound(int64_t round,
                            const RoundObservation& observation) = 0;

  // --- Per-worker interface used by the asynchronous trainer (Alg. 2),
  // where only the m first-arriving workers are planned each round. Only
  // strategies that support asynchronous operation override these.
  virtual bool SupportsAsync() const { return false; }
  virtual WorkerRoundPlan PlanWorker(int64_t round, int worker);
  virtual void ObserveWorker(int64_t round, int worker,
                             double completion_time, double mean_time,
                             double delta_loss);
};

inline WorkerRoundPlan Strategy::PlanWorker(int64_t /*round*/,
                                            int /*worker*/) {
  FEDMP_CHECK(false) << Name() << " does not support asynchronous operation";
  return WorkerRoundPlan{};
}

inline void Strategy::ObserveWorker(int64_t /*round*/, int /*worker*/,
                                    double /*completion_time*/,
                                    double /*mean_time*/,
                                    double /*delta_loss*/) {
  FEDMP_CHECK(false) << Name() << " does not support asynchronous operation";
}

}  // namespace fedmp::fl

#endif  // FEDMP_FL_STRATEGY_H_
