#include "fl/round_log.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fedmp::fl {

double RoundLog::TimeToAccuracy(double target) const {
  for (const RoundRecord& r : records_) {
    if (r.test_accuracy >= target) return r.sim_time;
  }
  return -1.0;
}

double RoundLog::TimeToPerplexity(double target) const {
  for (const RoundRecord& r : records_) {
    if (r.test_perplexity >= 0.0 && r.test_perplexity <= target) {
      return r.sim_time;
    }
  }
  return -1.0;
}

double RoundLog::BestAccuracyWithin(double time_budget) const {
  double best = -1.0;
  for (const RoundRecord& r : records_) {
    if (r.sim_time > time_budget) break;
    if (r.test_accuracy > best) best = r.test_accuracy;
  }
  return best;
}

double RoundLog::BestPerplexityWithin(double time_budget) const {
  double best = -1.0;
  for (const RoundRecord& r : records_) {
    if (r.sim_time > time_budget) break;
    if (r.test_perplexity < 0.0) continue;
    if (best < 0.0 || r.test_perplexity < best) best = r.test_perplexity;
  }
  return best;
}

double RoundLog::FinalAccuracy() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->test_accuracy >= 0.0) return it->test_accuracy;
  }
  return -1.0;
}

double RoundLog::MeanDecisionOverheadMs() const {
  if (records_.empty()) return 0.0;
  double acc = 0.0;
  for (const RoundRecord& r : records_) acc += r.decision_overhead_ms;
  return acc / static_cast<double>(records_.size());
}

double RoundLog::TotalSimTime() const {
  return records_.empty() ? 0.0 : records_.back().sim_time;
}

CsvTable RoundLog::ToTable() const {
  CsvTable table({"round", "sim_time", "round_seconds", "train_loss",
                  "mean_ratio", "test_accuracy", "test_loss",
                  "test_perplexity", "decision_overhead_ms",
                  "participants", "rejected_updates", "duplicate_updates",
                  "max_param_staleness"});
  for (const RoundRecord& r : records_) {
    Status s = table.AddRow(std::vector<std::string>{
        StrFormat("%lld", (long long)r.round),
        StrFormat("%.2f", r.sim_time),
        StrFormat("%.2f", r.round_seconds),
        StrFormat("%.4f", r.train_loss),
        StrFormat("%.3f", r.mean_ratio),
        StrFormat("%.4f", r.test_accuracy),
        StrFormat("%.4f", r.test_loss),
        StrFormat("%.3f", r.test_perplexity),
        StrFormat("%.3f", r.decision_overhead_ms),
        StrFormat("%lld", (long long)r.participants),
        StrFormat("%lld", (long long)r.rejected_updates),
        StrFormat("%lld", (long long)r.duplicate_updates),
        StrFormat("%lld", (long long)r.max_param_staleness)});
    FEDMP_CHECK(s.ok());
  }
  return table;
}

}  // namespace fedmp::fl
