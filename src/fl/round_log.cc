#include "fl/round_log.h"

#include <fstream>
#include <iterator>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/json_util.h"

namespace fedmp::fl {

namespace {

// The single source of truth for the per-round schema: ToTable() and
// ToJsonl() both walk this list, so the header, the CSV rows, and the JSONL
// keys cannot drift apart when a field is added.
struct Column {
  const char* name;
  bool is_int;
  int precision;  // fixed decimals (doubles only)
  int64_t (*get_int)(const RoundRecord&);
  double (*get_double)(const RoundRecord&);
};

#define FEDMP_INT_COLUMN(field) \
  {#field, true, 0, [](const RoundRecord& r) { return r.field; }, nullptr}
#define FEDMP_DBL_COLUMN(field, precision)  \
  {#field, false, precision, nullptr,       \
   [](const RoundRecord& r) { return r.field; }}

const Column kColumns[] = {
    FEDMP_INT_COLUMN(round),
    FEDMP_DBL_COLUMN(sim_time, 2),
    FEDMP_DBL_COLUMN(round_seconds, 2),
    FEDMP_DBL_COLUMN(train_loss, 4),
    FEDMP_DBL_COLUMN(mean_ratio, 3),
    FEDMP_DBL_COLUMN(test_accuracy, 4),
    FEDMP_DBL_COLUMN(test_loss, 4),
    FEDMP_DBL_COLUMN(test_perplexity, 3),
    FEDMP_DBL_COLUMN(decision_overhead_ms, 3),
    FEDMP_INT_COLUMN(participants),
    FEDMP_INT_COLUMN(rejected_updates),
    FEDMP_INT_COLUMN(duplicate_updates),
    FEDMP_INT_COLUMN(max_param_staleness),
    FEDMP_INT_COLUMN(critical_worker),
    FEDMP_DBL_COLUMN(critical_comp_s, 4),
    FEDMP_DBL_COLUMN(critical_comm_s, 4),
    FEDMP_DBL_COLUMN(straggler_gap_max, 4),
    FEDMP_INT_COLUMN(flops_total),
    FEDMP_INT_COLUMN(bytes_up),
    FEDMP_INT_COLUMN(bytes_down),
    FEDMP_DBL_COLUMN(bytes_saved_ratio, 4),
};

#undef FEDMP_INT_COLUMN
#undef FEDMP_DBL_COLUMN

}  // namespace

double RoundLog::TimeToAccuracy(double target) const {
  for (const RoundRecord& r : records_) {
    if (r.test_accuracy >= target) return r.sim_time;
  }
  return -1.0;
}

double RoundLog::TimeToPerplexity(double target) const {
  for (const RoundRecord& r : records_) {
    if (r.test_perplexity >= 0.0 && r.test_perplexity <= target) {
      return r.sim_time;
    }
  }
  return -1.0;
}

double RoundLog::BestAccuracyWithin(double time_budget) const {
  double best = -1.0;
  for (const RoundRecord& r : records_) {
    if (r.sim_time > time_budget) break;
    if (r.test_accuracy > best) best = r.test_accuracy;
  }
  return best;
}

double RoundLog::BestPerplexityWithin(double time_budget) const {
  double best = -1.0;
  for (const RoundRecord& r : records_) {
    if (r.sim_time > time_budget) break;
    if (r.test_perplexity < 0.0) continue;
    if (best < 0.0 || r.test_perplexity < best) best = r.test_perplexity;
  }
  return best;
}

double RoundLog::FinalAccuracy() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->test_accuracy >= 0.0) return it->test_accuracy;
  }
  return -1.0;
}

double RoundLog::MeanDecisionOverheadMs() const {
  if (records_.empty()) return 0.0;
  double acc = 0.0;
  for (const RoundRecord& r : records_) acc += r.decision_overhead_ms;
  return acc / static_cast<double>(records_.size());
}

double RoundLog::TotalSimTime() const {
  return records_.empty() ? 0.0 : records_.back().sim_time;
}

CsvTable RoundLog::ToTable() const {
  std::vector<std::string> header;
  for (const Column& c : kColumns) header.push_back(c.name);
  CsvTable table(std::move(header));
  for (const RoundRecord& r : records_) {
    std::vector<std::string> cells;
    cells.reserve(std::size(kColumns));
    for (const Column& c : kColumns) {
      cells.push_back(c.is_int
                          ? StrFormat("%lld", (long long)c.get_int(r))
                          : StrFormat("%.*f", c.precision, c.get_double(r)));
    }
    Status s = table.AddRow(std::move(cells));
    FEDMP_CHECK(s.ok());
  }
  return table;
}

void RoundLog::ToJsonl(std::ostream& os) const {
  for (const RoundRecord& r : records_) {
    os << '{';
    bool first = true;
    for (const Column& c : kColumns) {
      if (!first) os << ',';
      first = false;
      os << '"' << c.name << "\":";
      if (c.is_int) {
        os << (long long)c.get_int(r);
      } else {
        os << obs::JsonNumber(c.get_double(r), c.precision);
      }
    }
    os << "}\n";
  }
}

std::string RoundLog::ToJsonlString() const {
  std::ostringstream os;
  ToJsonl(os);
  return os.str();
}

Status RoundLog::WriteJsonlFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path + " for writing");
  ToJsonl(out);
  return Status::Ok();
}

}  // namespace fedmp::fl
