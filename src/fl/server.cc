#include "fl/server.h"

#include <cmath>

#include "data/dataloader.h"
#include "data/synthetic_text.h"
#include "nn/layers/softmax_xent.h"
#include "nn/metrics.h"

namespace fedmp::fl {

ParameterServer::ParameterServer(nn::ModelSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  std::unique_ptr<nn::Model> model = nn::BuildModelOrDie(spec_, seed_);
  weights_ = model->GetWeights();
}

void ParameterServer::SetWeights(nn::TensorList weights) {
  FEDMP_CHECK(nn::SameShapes(weights, weights_))
      << "SetWeights with mismatched shapes";
  weights_ = std::move(weights);
}

ParameterServer::EvalResult ParameterServer::Evaluate(
    const data::Dataset& test, int64_t batch_size, bool is_language_model,
    int64_t max_batches) const {
  std::unique_ptr<nn::Model> model = nn::BuildModelOrDie(spec_, seed_);
  model->SetWeights(weights_);

  data::DataLoader loader(&test, batch_size, /*shuffle=*/false,
                          /*seed=*/1);
  const int64_t batches_per_epoch =
      (test.size() + batch_size - 1) / batch_size;
  const int64_t batches = max_batches > 0
                              ? std::min(max_batches, batches_per_epoch)
                              : batches_per_epoch;

  double loss_sum = 0.0;
  double correct_weighted = 0.0;
  int64_t total = 0;
  for (int64_t b = 0; b < batches; ++b) {
    nn::Tensor batch;
    std::vector<int64_t> labels;
    loader.NextBatch(&batch, &labels);
    double loss = 0.0;
    double acc = 0.0;
    int64_t count = 0;
    if (is_language_model) {
      nn::Tensor inputs;
      std::vector<int64_t> targets;
      data::SplitLmBatch(batch, &inputs, &targets);
      nn::Tensor logits = model->Forward(inputs, /*training=*/false);
      loss = nn::SoftmaxCrossEntropy(logits, targets, nullptr);
      acc = nn::Accuracy(logits, targets);
      count = static_cast<int64_t>(targets.size());
    } else {
      nn::Tensor logits = model->Forward(batch, /*training=*/false);
      loss = nn::SoftmaxCrossEntropy(logits, labels, nullptr);
      acc = nn::Accuracy(logits, labels);
      count = static_cast<int64_t>(labels.size());
    }
    loss_sum += loss * static_cast<double>(count);
    correct_weighted += acc * static_cast<double>(count);
    total += count;
  }
  EvalResult result;
  FEDMP_CHECK_GT(total, 0);
  result.loss = loss_sum / static_cast<double>(total);
  result.accuracy = correct_weighted / static_cast<double>(total);
  result.perplexity = nn::PerplexityFromLoss(result.loss);
  return result;
}

}  // namespace fedmp::fl
