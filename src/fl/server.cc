#include "fl/server.h"

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "data/synthetic_text.h"
#include "nn/layers/softmax_xent.h"
#include "nn/metrics.h"
#include "nn/tensor_ops.h"

namespace fedmp::fl {

ParameterCoverage::ParameterCoverage(const nn::ModelSpec& spec) {
  const pruning::PruneMask full = pruning::FullMask(spec);
  for (size_t l = 0; l < full.layers.size(); ++l) {
    if (!full.layers[l].prunable) continue;
    staleness_.emplace_back(
        static_cast<size_t>(full.layers[l].original_width), 0);
    layer_index_.push_back(l);
  }
}

void ParameterCoverage::ObserveRound(
    const std::vector<const pruning::PruneMask*>& masks) {
  BeginRound();
  for (const pruning::PruneMask* mask : masks) {
    FEDMP_CHECK(mask != nullptr);
    AccumulateMask(*mask);
  }
  CommitRound();
}

void ParameterCoverage::BeginRound() {
  if (covered_.size() != staleness_.size()) {
    covered_.resize(staleness_.size());
    for (size_t t = 0; t < staleness_.size(); ++t) {
      covered_[t].resize(staleness_[t].size());
    }
  }
  for (auto& layer : covered_) {
    std::fill(layer.begin(), layer.end(), 0);
  }
}

void ParameterCoverage::AccumulateMask(const pruning::PruneMask& mask) {
  for (size_t t = 0; t < staleness_.size(); ++t) {
    const size_t l = layer_index_[t];
    FEDMP_CHECK_LT(l, mask.layers.size());
    const pruning::LayerMask& lm = mask.layers[l];
    std::vector<uint8_t>& covered = covered_[t];
    if (!lm.prunable) {
      // A full-model participant covers the whole layer.
      std::fill(covered.begin(), covered.end(), 1);
      continue;
    }
    for (int64_t u : lm.kept) covered[static_cast<size_t>(u)] = 1;
  }
}

void ParameterCoverage::CommitRound() {
  if (covered_.size() != staleness_.size()) BeginRound();  // nothing folded
  ++rounds_observed_;
  for (size_t t = 0; t < staleness_.size(); ++t) {
    std::vector<int64_t>& units = staleness_[t];
    const std::vector<uint8_t>& covered = covered_[t];
    for (size_t u = 0; u < units.size(); ++u) {
      units[u] = covered[u] != 0 ? 0 : units[u] + 1;
    }
  }
}

int64_t ParameterCoverage::max_staleness() const {
  int64_t worst = 0;
  for (const auto& units : staleness_) {
    for (int64_t s : units) worst = std::max(worst, s);
  }
  return worst;
}

ParameterServer::ParameterServer(nn::ModelSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  std::unique_ptr<nn::Model> model = nn::BuildModelOrDie(spec_, seed_);
  weights_ = model->GetWeights();
}

void ParameterServer::SetWeights(nn::TensorList weights) {
  FEDMP_CHECK(nn::SameShapes(weights, weights_))
      << "SetWeights with mismatched shapes";
  weights_ = std::move(weights);
}

void ParameterServer::ApplyAggregate(nn::TensorList sum, int participants) {
  FEDMP_CHECK_GT(participants, 0);
  nn::ScaleLists(sum, 1.0f / static_cast<float>(participants));
  SetWeights(std::move(sum));
}

bool ParameterServer::AcceptPayload(const nn::TensorList& payload) {
  if (nn::AllFiniteList(payload)) return true;
  ++corrupt_rejected_;
  return false;
}

ParameterServer::EvalResult ParameterServer::Evaluate(
    const data::Dataset& test, int64_t batch_size, bool is_language_model,
    int64_t max_batches) const {
  std::unique_ptr<nn::Model> model = nn::BuildModelOrDie(spec_, seed_);
  model->SetWeights(weights_);

  data::DataLoader loader(&test, batch_size, /*shuffle=*/false,
                          /*seed=*/1);
  const int64_t batches_per_epoch =
      (test.size() + batch_size - 1) / batch_size;
  const int64_t batches = max_batches > 0
                              ? std::min(max_batches, batches_per_epoch)
                              : batches_per_epoch;

  double loss_sum = 0.0;
  double correct_weighted = 0.0;
  int64_t total = 0;
  for (int64_t b = 0; b < batches; ++b) {
    nn::Tensor batch;
    std::vector<int64_t> labels;
    loader.NextBatch(&batch, &labels);
    double loss = 0.0;
    double acc = 0.0;
    int64_t count = 0;
    if (is_language_model) {
      nn::Tensor inputs;
      std::vector<int64_t> targets;
      data::SplitLmBatch(batch, &inputs, &targets);
      nn::Tensor logits = model->Forward(inputs, /*training=*/false);
      loss = nn::SoftmaxCrossEntropy(logits, targets, nullptr);
      acc = nn::Accuracy(logits, targets);
      count = static_cast<int64_t>(targets.size());
    } else {
      nn::Tensor logits = model->Forward(batch, /*training=*/false);
      loss = nn::SoftmaxCrossEntropy(logits, labels, nullptr);
      acc = nn::Accuracy(logits, labels);
      count = static_cast<int64_t>(labels.size());
    }
    loss_sum += loss * static_cast<double>(count);
    correct_weighted += acc * static_cast<double>(count);
    total += count;
  }
  EvalResult result;
  FEDMP_CHECK_GT(total, 0);
  result.loss = loss_sum / static_cast<double>(total);
  result.accuracy = correct_weighted / static_cast<double>(total);
  result.perplexity = nn::PerplexityFromLoss(result.loss);
  return result;
}

}  // namespace fedmp::fl
