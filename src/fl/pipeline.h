#ifndef FEDMP_FL_PIPELINE_H_
#define FEDMP_FL_PIPELINE_H_

#include <vector>

#include "fl/aggregation.h"
#include "fl/ps_shard.h"

namespace fedmp::fl {

// Pipelined round execution toggle (DESIGN.md "Execution pipeline").
// Defaults to on; FEDMP_PIPELINE=0 or FEDMP_HOTPATH_BASELINE=1 in the
// environment disables it at first use (tests use SetPipelineEnabled).
// When off, both trainers run their original phase-barrier loops — the
// bit-identical oracle the pipelined path is tested against.
bool PipelineEnabled();
void SetPipelineEnabled(bool on);

// Streams R2SP aggregation while workers are still training: each worker
// task hands its sub-model in via Accumulate() the moment it finishes, and
// the aggregator folds contributions into partial sums without waiting for
// the full cohort — there is no materialized all-recovered-models barrier.
//
// Determinism: floating-point addition is not associative, so additions are
// associated by the canonical reduction tree over the slot range
// (common/range_tree.h) — the same association AggregateSubModels uses —
// no matter when contributions arrive. Accumulate() computes the slot's
// contribution (recover to full shape, plus the residual model under R2SP;
// the expensive, parallelizable part) and resolves its leaf; a subtree sum
// collapses the moment both children are resolved, so out-of-order arrivals
// merge immediately instead of waiting on slot 0. Contribution values are
// per-slot pure functions and the tree shape depends only on num_slots, so
// the result is bit-identical to the serial oracle at any thread count and
// any completion order.
//
// Memory: a resolved subtree frees its children, so the live set is the
// undecided/unready leaves plus O(log num_slots) partials — with a bounded
// in-flight window (trainer's scale.max_inflight) peak memory is
// O(window x model), not O(fleet x model). Deadline rounds defer every
// decision to the tail, so they keep all arrived contributions live; the
// bounded-memory contract applies to eager-admission (no-deadline) rounds.
//
// Protocol per slot (all methods thread-safe):
//   exactly one of Accumulate / AccumulateWithResidual / MarkUnavailable,
//   and exactly one of Admit / Reject (any order relative to the above);
// then Finish() once every slot is decided and ready. Rejected and
// unavailable slots are holes: they pass through the tree without costing
// a float op, exactly as holes do in AggregateSubModels.
//
// Locking is sharded (fl/ps_shard.h): the slot range is partitioned into
// canonical-slice shards, each guarded by its own mutex, and bubble-up
// collapse stops at the shard's subtree root. Producers folding into
// different shards never contend; Finish() locks each shard once (the
// publish point for its subtree) and merges the shard roots down the
// canonical top tree. Since every shard is a tree node, the shard count
// changes only lock granularity, never the aggregated bits — shard count 1
// is a single global lock, today's unsharded behavior exactly.
class StreamingAggregator {
 public:
  // `global_weights` must outlive the aggregator and stay unchanged until
  // Finish() (it is the dispatch-time global both recovery and residuals
  // read). `quantize_residuals` applies the 8-bit residual round-trip,
  // mirroring AggregateSubModels. `ps_shards` is the requested lock-shard
  // count, resolved by ResolvePsShards (0 = FEDMP_PS_SHARDS, else auto).
  StreamingAggregator(const nn::ModelSpec& spec,
                      const nn::TensorList& global_weights, int num_slots,
                      SyncScheme scheme, bool quantize_residuals,
                      int ps_shards = 0);

  StreamingAggregator(const StreamingAggregator&) = delete;
  StreamingAggregator& operator=(const StreamingAggregator&) = delete;

  // Computes slot's contribution: recover(sub) [+ residual(global, mask),
  // quantized if configured] — identical op order to AggregateSubModels.
  void Accumulate(int slot, const nn::TensorList& sub_weights,
                  const pruning::PruneMask& mask);

  // Async-engine variant: the residual was computed at dispatch time by the
  // caller and is added verbatim (never quantized), matching the async
  // aggregation loop.
  void AccumulateWithResidual(int slot, const nn::TensorList& sub_weights,
                              const pruning::PruneMask& mask,
                              const nn::TensorList& residual);

  // Marks a slot that will never contribute (no payload exists).
  void MarkUnavailable(int slot);

  void Admit(int slot);
  void Reject(int slot);

  struct Result {
    nn::TensorList sum;    // UNSCALED sum over admitted slots — callers
                           // apply ScaleLists(1/participants) themselves so
                           // the op order matches the serial path exactly
    int participants = 0;
  };
  // Requires every slot decided and ready (the tree fully collapsed) and at
  // least one admitted slot. Emits the same r2sp_aggregate span + counters
  // as AggregateSubModels.
  Result Finish();

  // Fog-tier variant: same preconditions on the slots, but no aggregate
  // telemetry and zero admitted slots is legal (a whole region can be down
  // — the result is then an empty sum). The HierarchicalAggregator calls
  // this per fog and emits the round's telemetry once itself.
  Result FinishPartial();

 private:
  enum class Decision { kPending, kAdmitted, kRejected };

  // One canonical-tree node over the slot range [lo, hi). Leaves carry the
  // slot protocol state; inner nodes collapse once both children resolved.
  struct Node {
    int lo = 0, hi = 0;
    int parent = -1;
    int left = -1, right = -1;      // -1 on leaves
    nn::TensorList sum;             // empty = hole / all-hole subtree
    int participants = 0;
    bool resolved = false;
    // Leaf-only protocol state.
    Decision decision = Decision::kPending;
    bool ready = false;
  };

  int BuildTree(int lo, int hi, int parent);
  // Marks the slot's leaf resolved and collapses every subtree this
  // completes, stopping at the owning shard's root (nodes above it belong
  // to the Finish()-time top fold). Caller holds shard's mutex.
  void ResolveLeafLocked(int slot, int shard);
  Result FinishInternal(bool allow_empty, bool emit_telemetry);

  const nn::ModelSpec& spec_;
  const nn::TensorList& global_weights_;
  const SyncScheme scheme_;
  const bool quantize_residuals_;
  const int num_slots_;

  PsShardSet shards_;
  std::vector<Node> nodes_;
  std::vector<int> leaf_of_slot_;
  int root_ = -1;
  // Node id of each shard's subtree root; bubble-up never crosses it.
  std::vector<int> shard_root_;
  // Resolved-leaf count per shard, guarded by that shard's mutex.
  std::vector<int> shard_resolved_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_PIPELINE_H_
