#ifndef FEDMP_FL_PIPELINE_H_
#define FEDMP_FL_PIPELINE_H_

#include <mutex>
#include <vector>

#include "fl/aggregation.h"

namespace fedmp::fl {

// Pipelined round execution toggle (DESIGN.md "Execution pipeline").
// Defaults to on; FEDMP_PIPELINE=0 or FEDMP_HOTPATH_BASELINE=1 in the
// environment disables it at first use (tests use SetPipelineEnabled).
// When off, both trainers run their original phase-barrier loops — the
// bit-identical oracle the pipelined path is tested against.
bool PipelineEnabled();
void SetPipelineEnabled(bool on);

// Streams R2SP aggregation while workers are still training: each worker
// task hands its sub-model in via Accumulate() the moment it finishes, and
// the aggregator folds contributions into the running sum without waiting
// for the full cohort — there is no materialized all-recovered-models
// barrier.
//
// Determinism: floating-point addition is not associative, so the FOLD
// order is pinned to slot order (= worker order, the order the serial
// AggregateSubModels loop uses) no matter when contributions arrive.
// Accumulate() computes the slot's contribution — recover to full shape,
// plus the residual model under R2SP (the expensive, parallelizable part)
// — and marks the slot ready; the running sum only advances across the
// prefix of slots that are both decided and ready. Contribution values are
// per-slot pure functions, so the result is bit-identical to the serial
// loop at any thread count and any completion order.
//
// Protocol per slot (all methods thread-safe):
//   exactly one of Accumulate / AccumulateWithResidual / MarkUnavailable,
//   and exactly one of Admit / Reject (any order relative to the above);
// then Finish() once every slot is decided and ready. Rejected slots are
// skipped by the fold; MarkUnavailable is for slots that never produced a
// payload (crashed worker) so the fold can move past them.
class StreamingAggregator {
 public:
  // `global_weights` must outlive the aggregator and stay unchanged until
  // Finish() (it is the dispatch-time global both recovery and residuals
  // read). `quantize_residuals` applies the 8-bit residual round-trip,
  // mirroring AggregateSubModels.
  StreamingAggregator(const nn::ModelSpec& spec,
                      const nn::TensorList& global_weights, int num_slots,
                      SyncScheme scheme, bool quantize_residuals);

  StreamingAggregator(const StreamingAggregator&) = delete;
  StreamingAggregator& operator=(const StreamingAggregator&) = delete;

  // Computes slot's contribution: recover(sub) [+ residual(global, mask),
  // quantized if configured] — identical op order to AggregateSubModels.
  void Accumulate(int slot, const nn::TensorList& sub_weights,
                  const pruning::PruneMask& mask);

  // Async-engine variant: the residual was computed at dispatch time by the
  // caller and is added verbatim (never quantized), matching the async
  // aggregation loop.
  void AccumulateWithResidual(int slot, const nn::TensorList& sub_weights,
                              const pruning::PruneMask& mask,
                              const nn::TensorList& residual);

  // Marks a slot that will never contribute (no payload exists).
  void MarkUnavailable(int slot);

  void Admit(int slot);
  void Reject(int slot);

  struct Result {
    nn::TensorList sum;    // UNSCALED sum over admitted slots — callers
                           // apply ScaleLists(1/participants) themselves so
                           // the op order matches the serial path exactly
    int participants = 0;
  };
  // Requires every slot decided and ready (the fold fully advanced) and at
  // least one admitted slot. Emits the same r2sp_aggregate span + counters
  // as AggregateSubModels.
  Result Finish();

 private:
  enum class Decision { kPending, kAdmitted, kRejected };
  struct Slot {
    nn::TensorList contribution;
    Decision decision = Decision::kPending;
    bool ready = false;
  };

  // Folds the decided-and-ready prefix into sum_. Caller holds mu_.
  void FoldReadyLocked();

  const nn::ModelSpec& spec_;
  const nn::TensorList& global_weights_;
  const SyncScheme scheme_;
  const bool quantize_residuals_;

  std::mutex mu_;
  std::vector<Slot> slots_;
  nn::TensorList sum_;
  int folded_ = 0;        // next slot index the fold is waiting on
  int participants_ = 0;  // admitted slots folded so far
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_PIPELINE_H_
