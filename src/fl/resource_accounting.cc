#include "fl/resource_accounting.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "nn/flops.h"

namespace fedmp::fl {

ResourceParams MakeResourceParams(const nn::ModelSpec& spec,
                                  const nn::TensorList& weights) {
  ResourceParams p;
  p.dense_params = spec.NumParams();

  nn::MacAnalysis macs;
  Status s = nn::AnalyzeTrainingMacs(spec, &macs);
  FEDMP_CHECK(s.ok()) << "dense spec MAC analysis failed: " << s.message();
  p.dense_macs_fwd_per_sample = macs.forward_per_sample;
  p.dense_macs_bwd_per_sample = macs.backward_per_sample;

  for (const nn::Tensor& t : weights) {
    const int64_t numel = t.numel();
    p.residual_bytes_f32 += numel * 4;
    // QuantizedTensor::ByteSize(): one byte per element + min/scale floats
    // + the stored shape vector.
    p.residual_bytes_quantized +=
        numel + 2 * static_cast<int64_t>(sizeof(float)) +
        t.ndim() * static_cast<int64_t>(sizeof(int64_t));
  }
  return p;
}

int64_t MaskWireBytes(const pruning::PruneMask& mask) {
  int64_t bytes = 0;
  for (const pruning::LayerMask& layer : mask.layers) {
    if (!layer.prunable) continue;
    bytes += 8 + (layer.original_width + 7) / 8;
  }
  return bytes;
}

obs::WorkerResources ComputeWorkerResources(const ResourceParams& base,
                                            const nn::ModelSpec& sub_spec,
                                            const pruning::PruneMask& mask,
                                            int64_t rows,
                                            double compress_ratio,
                                            bool quantize_residuals) {
  obs::WorkerResources w;
  w.rows = rows;

  nn::MacAnalysis macs;
  Status s = nn::AnalyzeTrainingMacs(sub_spec, &macs);
  FEDMP_CHECK(s.ok()) << "sub spec MAC analysis failed: " << s.message();
  w.flops_forward = macs.forward_per_sample * rows;
  w.flops_backward = macs.backward_per_sample * rows;
  w.dense_flops =
      (base.dense_macs_fwd_per_sample + base.dense_macs_bwd_per_sample) * rows;

  const int64_t sub_params = sub_spec.NumParams();
  const bool pruned = sub_params < base.dense_params;
  const int64_t sub_bytes = sub_params * 4;
  w.bytes_down = sub_bytes + (pruned ? MaskWireBytes(mask) : 0);
  // Upload compression mirrors the trainers' effective-byte convention:
  // (1 - ratio) payload plus ~10% encoding overhead.
  w.bytes_up = compress_ratio > 0.0
                   ? static_cast<int64_t>(std::llround(
                         static_cast<double>(sub_bytes) *
                         (1.0 - compress_ratio) * 1.1))
                   : sub_bytes;
  if (pruned) {
    w.bytes_residual = quantize_residuals ? base.residual_bytes_quantized
                                          : base.residual_bytes_f32;
  }
  w.dense_bytes = 2 * base.dense_params * 4;  // dense f32 down + up
  return w;
}

bool LedgerCheckEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FEDMP_LEDGER_CHECK");
    return env != nullptr && env[0] == '1';
  }();
  return enabled;
}

}  // namespace fedmp::fl
