#ifndef FEDMP_FL_WORKER_H_
#define FEDMP_FL_WORKER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataloader.h"
#include "data/partition.h"
#include "data/task_zoo.h"
#include "edge/device.h"
#include "nn/model_builder.h"
#include "nn/sgd.h"

namespace fedmp::fl {

// Global switch for per-worker model/optimizer reuse across rounds.
// Defaults to on; FEDMP_MODEL_REUSE=0 or FEDMP_HOTPATH_BASELINE=1 in the
// environment disables it at first use (tests use SetModelReuseEnabled).
// With reuse on or off the trained weights are bit-identical: the cached
// path draws the same rng_.NextU64() model seed a fresh build would and
// replays the same dropout stream through Model::ReseedDropout.
bool ModelReuseEnabled();
void SetModelReuseEnabled(bool on);

// Drops every execution lane's cached (model, optimizer) pairs (lazily, the
// next time each lane trains). Tests that pin cache hit counts call this
// first so the counts start from a cold cache regardless of what ran
// earlier in the process.
void ClearModelCache();

// Local-update configuration for one round on one worker.
struct LocalTrainOptions {
  int64_t tau = 5;  // local SGD iterations per round
  int64_t batch_size = 16;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  double proximal_mu = 0.0;  // FedProx term (0 disables)
  double clip_norm = 0.0;
  bool is_language_model = false;
};

// What a worker sends back to the PS after local training.
struct LocalResult {
  nn::TensorList weights;
  double initial_loss = 0.0;  // loss of the received model on the 1st batch
  double final_loss = 0.0;    // mean loss over the last tau/2 iterations
  int64_t iterations = 0;
};

// A simulated edge worker: a data shard, a device profile, and the local
// SGD loop. Real learning happens here; time is accounted by the trainer
// through the cost model.
class Worker {
 public:
  Worker(int id, const data::Dataset* train, std::vector<int64_t> shard,
         edge::DeviceProfile profile, uint64_t seed);

  // Streaming-view mode: the worker stores NO index vector. Each
  // LocalTrain materializes its shard from the view (a pure function of
  // (view seed, worker id)), trains, and frees it — the fleet's index
  // footprint is O(concurrently-training workers x shard) instead of
  // O(fleet x shard), which is what makes 100k-worker rounds fit. The
  // view must outlive the worker. Deterministic run to run, but NOT
  // bit-compatible with the eager-shard mode: a fresh loader (and its
  // rng_-drawn shuffle seed) is created every round here, while the eager
  // path draws one loader seed and keeps the loader across rounds.
  Worker(int id, const data::Dataset* train,
         const data::PartitionView* view, edge::DeviceProfile profile,
         uint64_t seed);

  int id() const { return id_; }
  const edge::DeviceProfile& profile() const { return profile_; }
  Rng& rng() { return rng_; }
  int64_t shard_size() const { return loader_indices_size_; }

  // Builds a model from (spec, weights), runs options.tau SGD iterations on
  // the local shard, returns the trained weights and losses.
  LocalResult LocalTrain(const nn::ModelSpec& spec,
                         const nn::TensorList& weights,
                         const LocalTrainOptions& options);

  // Total training rows the NEXT LocalTrain with these options will
  // process: replays the loader cursor (fresh in streaming mode or after a
  // batch-size change, persisted otherwise) over options.tau batches,
  // partial tail batches included. A pure function of deterministic worker
  // state, used by the resource ledger at dispatch time.
  int64_t PlannedRows(const LocalTrainOptions& options) const;

 private:
  // NOTE: reusable (model, optimizer) pairs live in a per-execution-lane
  // cache shared by every Worker the lane drives (see worker.cc), NOT here.
  // A Worker object is therefore lightweight — a shard, a profile, and an
  // RNG stream — which is what lets one process simulate 10k+ workers: the
  // number of live models scales with lanes x architectures, not fleet
  // size, and a cache warmed by one worker serves all of them (the pruned
  // architectures come from the shared ratio grid). The cached path resets
  // the pair to fresh-build state (ReseedDropout, Sgd::Reset, SetWeights),
  // so which worker warmed an entry never changes the trained bits.
  int id_;
  const data::Dataset* train_;
  std::vector<int64_t> shard_;                       // eager mode only
  const data::PartitionView* view_ = nullptr;        // streaming mode only
  edge::DeviceProfile profile_;
  Rng rng_;
  std::unique_ptr<data::DataLoader> loader_;
  int64_t loader_batch_ = -1;
  int64_t loader_indices_size_ = 0;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_WORKER_H_
