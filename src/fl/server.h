#ifndef FEDMP_FL_SERVER_H_
#define FEDMP_FL_SERVER_H_

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "nn/model_builder.h"

namespace fedmp::fl {

// The parameter server: owns the global model (spec + weights) and the
// central evaluation loop.
class ParameterServer {
 public:
  // Builds the initial global model deterministically from `seed`.
  ParameterServer(nn::ModelSpec spec, uint64_t seed);

  const nn::ModelSpec& spec() const { return spec_; }
  const nn::TensorList& weights() const { return weights_; }
  void SetWeights(nn::TensorList weights);

  struct EvalResult {
    double accuracy = 0.0;
    double loss = 0.0;
    double perplexity = 0.0;
  };

  // Evaluates the current global model. For language models accuracy is
  // next-token accuracy and perplexity = exp(loss). `max_batches` < 0 means
  // the whole set.
  EvalResult Evaluate(const data::Dataset& test, int64_t batch_size,
                      bool is_language_model,
                      int64_t max_batches = -1) const;

 private:
  nn::ModelSpec spec_;
  nn::TensorList weights_;
  uint64_t seed_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_SERVER_H_
