#ifndef FEDMP_FL_SERVER_H_
#define FEDMP_FL_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/model_builder.h"
#include "pruning/mask.h"

namespace fedmp::fl {

// Tracks, per prunable unit of the global model, how many consecutive
// rounds it was NOT covered by any accepted participant's sub-model. Under
// R2SP an uncovered unit is value-preserved through residuals but makes no
// training progress, so unbounded staleness means a parameter has silently
// stopped training — the invariant the chaos suite asserts on.
class ParameterCoverage {
 public:
  // Tracks nothing until constructed from a spec.
  ParameterCoverage() = default;
  explicit ParameterCoverage(const nn::ModelSpec& spec);

  // Feeds one round's accepted participants' masks. An empty list (all
  // workers crashed / all updates rejected) stales every unit.
  void ObserveRound(const std::vector<const pruning::PruneMask*>& masks);

  // Streaming equivalent for fleet-scale rounds: BeginRound, then
  // AccumulateMask once per accepted participant as it retires, then
  // CommitRound. The union fold is commutative, so arrival order does not
  // matter, and the caller can free each mask immediately after its fold —
  // retaining O(fleet) masks until round end is a per-worker RSS floor at
  // 100k workers. ObserveRound(masks) == BeginRound + folds + CommitRound.
  void BeginRound();
  void AccumulateMask(const pruning::PruneMask& mask);
  void CommitRound();

  // Largest rounds-since-covered over all prunable units (0 right after a
  // full-coverage round).
  int64_t max_staleness() const;
  int64_t rounds_observed() const { return rounds_observed_; }

 private:
  // staleness_[l][u]: rounds since unit u of prunable layer l was last part
  // of an accepted update. Non-prunable layers (always shipped whole) are
  // not tracked — any surviving participant covers them.
  std::vector<std::vector<int64_t>> staleness_;
  // Per-round union scratch, shaped like staleness_; lives across rounds so
  // BeginRound is a fill, not an allocation.
  std::vector<std::vector<uint8_t>> covered_;
  std::vector<size_t> layer_index_;  // spec layer index of staleness_[l]
  int64_t rounds_observed_ = 0;
};

// The parameter server: owns the global model (spec + weights), screens
// incoming updates (corrupt payloads, duplicate deliveries), and runs the
// central evaluation loop.
class ParameterServer {
 public:
  // Builds the initial global model deterministically from `seed`.
  ParameterServer(nn::ModelSpec spec, uint64_t seed);

  const nn::ModelSpec& spec() const { return spec_; }
  const nn::TensorList& weights() const { return weights_; }
  void SetWeights(nn::TensorList weights);

  // Installs an UNSCALED aggregate sum over `participants` admitted
  // updates: scales by 1/participants in place, then SetWeights. The
  // streamed/hierarchical aggregators return unscaled sums so this final
  // op order matches the serial AggregateSubModels exactly.
  void ApplyAggregate(nn::TensorList sum, int participants);

  // Update screening: the PS refuses payloads containing non-finite values
  // (NaN/Inf from corrupted uploads) — aggregating even one would poison
  // the global model. Returns whether the payload was accepted; rejections
  // accumulate in corrupt_rejected().
  bool AcceptPayload(const nn::TensorList& payload);
  // Records that a repeated delivery of the same worker's update was
  // dropped (duplication must not double-weight a worker in the average).
  void NoteDuplicateDropped() { ++duplicates_dropped_; }
  // Records a rejection whose finite-ness scan already ran on a worker lane
  // (the pipelined round screens payloads inside the per-worker task; only
  // the counter update lands here, on the driver thread).
  void NoteCorruptRejected() { ++corrupt_rejected_; }

  int64_t corrupt_rejected() const { return corrupt_rejected_; }
  int64_t duplicates_dropped() const { return duplicates_dropped_; }

  struct EvalResult {
    double accuracy = 0.0;
    double loss = 0.0;
    double perplexity = 0.0;
  };

  // Evaluates the current global model. For language models accuracy is
  // next-token accuracy and perplexity = exp(loss). `max_batches` < 0 means
  // the whole set.
  EvalResult Evaluate(const data::Dataset& test, int64_t batch_size,
                      bool is_language_model,
                      int64_t max_batches = -1) const;

 private:
  nn::ModelSpec spec_;
  nn::TensorList weights_;
  uint64_t seed_;
  int64_t corrupt_rejected_ = 0;
  int64_t duplicates_dropped_ = 0;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_SERVER_H_
