#include "fl/async_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "common/mem_info.h"
#include "common/range_tree.h"
#include "common/thread_pool.h"
#include "edge/cost_model.h"
#include "edge/event_queue.h"
#include "edge/sim_clock.h"
#include "fl/pipeline.h"
#include "fl/resource_accounting.h"
#include "obs/analysis/round_health.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampling.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "pruning/recovery.h"
#include "pruning/sparsify.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {

namespace {

// Everything the PS must remember about an in-flight worker dispatch.
struct InFlight {
  pruning::PruneMask mask;
  nn::TensorList trained_weights;  // eager-trained at dispatch (equivalent:
                                   // the worker sees no global change
                                   // between dispatch and arrival)
  nn::TensorList residual;         // dispatch-time residual model (R2SP)
  double dispatch_time = 0.0;
  double delta_loss = 0.0;
  double final_loss = 0.0;
  double ratio = 0.0;
  double comp_s = 0.0;  // pre-fault compute / transfer split of the sampled
  double comm_s = 0.0;  // duration, kept for round-health attribution
  // Fault bookkeeping. `generation` stamps the dispatch; queue events carry
  // it as their tag so deliveries of superseded dispatches are discarded.
  int64_t generation = 0;
  bool failed = false;    // crash / lost upload / timeout: nothing arrives,
                          // the PS only detects the failure at event time
  bool consumed = false;  // first delivery processed (dedups duplicates)
};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

AsyncTrainer::AsyncTrainer(const data::FlTask* task,
                           std::vector<edge::DeviceProfile> devices,
                           data::Partition partition,
                           std::unique_ptr<Strategy> strategy,
                           const AsyncTrainerOptions& options)
    : task_(task),
      devices_(std::move(devices)),
      strategy_(std::move(strategy)),
      options_(options),
      rng_(options.base.seed) {
  FEDMP_CHECK(task != nullptr);
  FEDMP_CHECK(!devices_.empty());
  FEDMP_CHECK_EQ(devices_.size(), partition.size());
  FEDMP_CHECK(options_.m >= 1 &&
              options_.m <= static_cast<int>(devices_.size()));
  FEDMP_CHECK(options_.max_redispatch_per_round >= 0);
  FEDMP_CHECK(strategy_->SupportsAsync())
      << strategy_->Name() << " cannot run asynchronously";
  ThreadPool::SetGlobalThreads(
      ThreadPool::ResolveThreads(options_.base.num_threads));
  obs::MaybeEnableFromEnv();
  // Live tier (all opt-in via FEDMP_* variables; see obs/ headers).
  obs::MaybeEnableFlightRecorderFromEnv();
  obs::MaybeEnableSamplingFromEnv(options.base.seed);
  obs::MaybeEnableSnapshotsFromEnv();
  obs::MaybeEnableWatchdogFromEnv();
  server_ = std::make_unique<ParameterServer>(task_->model,
                                              options_.base.seed ^ 0x5EEDULL);
  fault_plan_ = internal::ResolveFaultPlan(options_.base,
                                           static_cast<int>(devices_.size()));
  coverage_ = ParameterCoverage(task_->model);
  strategy_->Initialize(static_cast<int>(devices_.size()), rng_.NextU64());
  for (size_t n = 0; n < devices_.size(); ++n) {
    workers_.push_back(std::make_unique<Worker>(
        static_cast<int>(n), &task_->train, partition[n], devices_[n],
        rng_.NextU64()));
  }
  internal::PushRunManifest("async", strategy_->Name(), options_.base,
                            static_cast<int>(devices_.size()));
}

RoundLog AsyncTrainer::Run() {
  RoundLog log;
  edge::SimClock clock;
  edge::EventQueue queue;
  // PS track for everything the event loop emits; dispatch lanes override.
  obs::TrackScope ps_scope(obs::PsTrack());
  obs::SetLogicalTime(clock.now());
  const int num_workers = static_cast<int>(workers_.size());
  const nn::ModelSpec& global_spec = server_->spec();
  const double mixing = options_.mixing > 0.0
                            ? options_.mixing
                            : static_cast<double>(options_.m) /
                                  static_cast<double>(num_workers);
  std::vector<InFlight> inflight(static_cast<size_t>(num_workers));
  int64_t next_generation = 1;
  // Resource ledger: async rounds charge every dispatch (initial, mid-round
  // re-dispatch) to the round it serves; a failed dispatch keeps its
  // downlink + compute cost but uploads nothing. Entries fold in from the
  // serial commit path, so totals are thread-count invariant.
  const ResourceParams res_params =
      MakeResourceParams(global_spec, server_->weights());
  obs::Ledger ledger;
  const bool ledger_check = LedgerCheckEnabled();
  if (ledger_check) obs::SetMacCountingEnabled(true);
  // Running mean of successful arrival durations, for the opt-in timeout.
  double duration_sum = 0.0;
  int64_t duration_count = 0;

  // Dispatches freshly planned sub-models to `ids` at the current clock,
  // trains them eagerly, applies this round's fault plan, and schedules
  // their arrivals (or failure detections). Three phases keep the result
  // bit-identical to dispatching serially in `ids` order:
  //   1. serial planning — PlanWorker mutates strategy state (incl. its
  //      RNG), so it runs in today's order;
  //   2. parallel work — prune + local SGD + cost sampling + residual
  //      touch only worker-owned state and read-only globals;
  //   3. serial commit — fault draws (pure per (round, worker)), inflight
  //      slots and queue pushes in `ids` order, so event-queue
  //      tie-breaking is unchanged.
  auto dispatch_all = [&](const std::vector<int>& ids, int64_t round) {
    const int64_t count = static_cast<int64_t>(ids.size());
    std::vector<WorkerRoundPlan> plans(static_cast<size_t>(count));
    for (int64_t j = 0; j < count; ++j) {
      plans[static_cast<size_t>(j)] =
          strategy_->PlanWorker(round, ids[static_cast<size_t>(j)]);
    }

    // Global weights do not change between planning and dispatch, so the
    // l1 importance ranking is shared across every lane of this batch.
    pruning::ImportanceRanking ranking;
    bool any_pruned = false;
    for (const auto& plan : plans) any_pruned |= plan.pruning_ratio > 0.0;
    if (any_pruned) {
      OBS_SPAN("rank_units", {{"round", round}});
      ranking = pruning::RankUnits(global_spec, server_->weights());
    }

    std::vector<InFlight> prepared(static_cast<size_t>(count));
    std::vector<double> durations(static_cast<size_t>(count));
    std::vector<obs::WorkerResources> prepared_res(static_cast<size_t>(count));
    // Phase 2 body: prune + local SGD + cost sampling + residual for one
    // dispatch. Touches only slot jj and worker ids[jj]'s own state, so it
    // runs on any lane.
    auto work_one = [&](int64_t j) {
      const size_t jj = static_cast<size_t>(j);
      const size_t i = static_cast<size_t>(ids[jj]);
      const WorkerRoundPlan& plan = plans[jj];
      obs::TrackScope lane(obs::WorkerTrack(ids[jj]));
      // Sampling-gated like the sync trainer's worker_train span: the plan
      // is a pure function of (seed, round, worker), so lanes agree on it
      // without coordination.
      std::optional<obs::ScopedSpan> dispatch_span;
      if (obs::ShouldTraceWorker(round, ids[jj],
                                 static_cast<int>(workers_.size()))) {
        dispatch_span.emplace("worker_dispatch",
                              obs::Args{{"worker", ids[jj]},
                                        {"round", round},
                                        {"ratio", plan.pruning_ratio}});
      }
      pruning::SubModel sub;
      if (plan.pruning_ratio > 0.0) {
        auto pruned = pruning::PruneByRatioRanked(
            global_spec, server_->weights(), ranking, plan.pruning_ratio);
        FEDMP_CHECK(pruned.ok()) << pruned.status();
        sub = std::move(pruned).value();
      } else {
        sub.spec = global_spec;
        sub.weights = server_->weights();
        sub.mask = pruning::FullMask(global_spec);
      }

      LocalTrainOptions local;
      local.tau = plan.tau > 0 ? plan.tau : task_->local_iterations;
      local.batch_size = task_->batch_size;
      local.learning_rate = task_->learning_rate;
      local.momentum = task_->momentum;
      local.weight_decay = task_->weight_decay;
      local.proximal_mu = plan.proximal_mu;
      local.clip_norm = task_->is_language_model ? 5.0 : 0.0;
      local.is_language_model = task_->is_language_model;
      // Rows must be read before LocalTrain advances the loader cursor.
      prepared_res[jj] = ComputeWorkerResources(
          res_params, sub.spec, sub.mask, workers_[i]->PlannedRows(local),
          /*compress_ratio=*/0.0, /*quantize_residuals=*/false);
      if (ledger_check) obs::ResetThreadMacCount();
      LocalResult result =
          workers_[i]->LocalTrain(sub.spec, sub.weights, local);
      if (ledger_check) {
        FEDMP_CHECK_EQ(obs::ThreadMacCount(), prepared_res[jj].flops())
            << "analytic vs instrumented MAC mismatch for worker " << ids[jj]
            << " round " << round;
      }

      const edge::DeviceRoundSample sample =
          edge::SampleRound(devices_[i], workers_[i]->rng());
      const double comp = edge::CompSeconds(sub.spec, local.tau,
                                            local.batch_size, sample,
                                            options_.base.cost);
      const double bytes = static_cast<double>(sub.spec.NumParams()) *
                           options_.base.cost.bytes_per_param;
      const double comm =
          edge::CostEncodedEnabled()
              ? edge::CommSeconds(
                    static_cast<double>(prepared_res[jj].bytes_down),
                    static_cast<double>(prepared_res[jj].bytes_up), sample,
                    options_.base.cost)
              : edge::CommSeconds(bytes, bytes, sample, options_.base.cost);

      auto residual = pruning::ResidualModel(
          global_spec, server_->weights(), sub.mask);
      FEDMP_CHECK(residual.ok()) << residual.status();
      prepared[jj] =
          InFlight{std::move(sub.mask), std::move(result.weights),
                   std::move(residual).value(), clock.now(),
                   result.initial_loss - result.final_loss,
                   result.final_loss, plan.pruning_ratio, comp, comm};
      durations[jj] = comp + comm;
    };
    // Phase 3 body: the serial commit for one dispatch. Mutates shared PS
    // state (generation counter, event queue, inflight slots), so it always
    // runs on the driver thread, in `ids` order.
    auto commit_one = [&](int64_t j) {
      const size_t jj = static_cast<size_t>(j);
      const int id = ids[jj];
      InFlight slot = std::move(prepared[jj]);
      double duration = durations[jj];
      slot.generation = next_generation++;

      bool duplicated = false;
      if (fault_plan_.active()) {
        const edge::WorkerRoundFaults faults = fault_plan_.FaultsFor(round, id);
        duration = duration * faults.slowdown + faults.extra_delay;
        slot.failed = !faults.Arrives();
        if (!slot.failed) {
          if (faults.update_corrupted) {
            internal::CorruptPayload(&slot.trained_weights);
          }
          duplicated = faults.update_duplicated;
        }
      }
      // Opt-in straggler timeout: once a full cohort of arrivals has been
      // observed, the PS stops waiting for any dispatch at
      // slack * mean-arrival-duration and treats it as failed.
      if (options_.apply_deadline_timeout && !slot.failed &&
          duration_count >= num_workers) {
        const double limit = options_.base.deadline.slack *
                             (duration_sum / static_cast<double>(duration_count));
        if (duration > limit) {
          duration = limit;
          slot.failed = true;
        }
      }

      const double arrival = clock.now() + duration;
      obs::InstantEvent("dispatch",
                        {{"worker", id},
                         {"round", round},
                         {"generation", slot.generation},
                         {"eta", arrival}});
      queue.Push(arrival, id, slot.generation);
      if (duplicated) queue.Push(arrival, id, slot.generation);
      obs::WorkerResources res = prepared_res[jj];
      if (slot.failed) {
        // Nothing arrives: downlink and compute were still spent, but no
        // upload lands (the dense baseline loses its uplink leg too).
        res.bytes_up = 0;
        res.dense_bytes -= res_params.dense_params * 4;
      }
      ledger.Add(res);
      inflight[static_cast<size_t>(id)] = std::move(slot);
    };

    if (PipelineEnabled()) {
      // Pipelined: each dispatch is one task; commits stream on the driver
      // as the in-order prefix completes, so a slow worker never stalls
      // the queue behind a barrier. Commit order — and with it generation
      // numbering and event-queue tie-breaking — stays `ids` order.
      TaskSet tasks;
      for (int64_t j = 0; j < count; ++j) {
        tasks.Submit(j, [&work_one, j] { work_one(j); });
      }
      std::vector<uint8_t> ready(static_cast<size_t>(count), 0);
      int64_t committed = 0;
      int64_t tag = -1;
      while (tasks.DrainNext(&tag)) {
        ready[static_cast<size_t>(tag)] = 1;
        while (committed < count && ready[static_cast<size_t>(committed)]) {
          commit_one(committed);
          ++committed;
        }
      }
      FEDMP_CHECK_EQ(committed, count);
    } else {
      ParallelFor(0, count, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) work_one(j);
      });
      for (int64_t j = 0; j < count; ++j) commit_one(j);
    }
  };

  ledger.BeginRound(0);
  {
    std::vector<int> everyone(static_cast<size_t>(num_workers));
    for (int n = 0; n < num_workers; ++n) everyone[static_cast<size_t>(n)] = n;
    dispatch_all(everyone, /*round=*/0);
  }

  for (int64_t round = 0; round < options_.base.max_rounds; ++round) {
    // m-fallback: when the fault plan leaves fewer than m workers alive this
    // round, the PS settles for every valid arrival it can still collect.
    const int target_m = fault_plan_.active()
                             ? std::min(options_.m, std::max(
                                   fault_plan_.CountAlive(round), 1))
                             : options_.m;

    // Collect the first target_m valid arrivals (Algorithm 2 lines 4-7).
    // Failure detections (crash, lost upload, timeout) and rejected corrupt
    // payloads trigger a bounded re-dispatch; past the budget the worker is
    // parked until the next round.
    std::vector<int> arrived;
    std::vector<double> arrival_durations;
    std::vector<int> parked;
    std::vector<int> redispatches(static_cast<size_t>(num_workers), 0);
    int64_t rejected = 0;
    int64_t duplicates = 0;
    // Pipelined: each accepted arrival's recover + residual fold starts the
    // moment the PS consumes its event, overlapping with the rest of the
    // collection loop (and any re-dispatch training it triggers) instead of
    // running serially after the cohort completes. Slots are arrival-order
    // and both paths sum along the canonical reduction tree over them
    // (trailing unused slots are holes, which the tree ignores), so the sum
    // is bit-identical to the serial engine.
    std::unique_ptr<StreamingAggregator> agg;
    TaskSet agg_tasks;
    if (PipelineEnabled()) {
      agg = std::make_unique<StreamingAggregator>(
          global_spec, server_->weights(), target_m, SyncScheme::kR2SP,
          /*quantize_residuals=*/false, options_.base.scale.ps_shards);
    }
    // Round-health inputs, one entry per consumed event (a re-dispatched
    // worker can contribute more than one). Emitted from this serial event
    // loop, so worker_timing events are thread-count-invariant.
    std::vector<obs::analysis::WorkerTiming> timings;
    auto note_timing = [&](int worker, const InFlight& f, double completion,
                           bool survived) {
      obs::analysis::WorkerTiming t;
      t.worker = worker;
      t.comp_s = f.comp_s;
      t.comm_s = f.comm_s;
      t.completion_s = completion;
      t.ratio = f.ratio;
      t.survived = survived;
      timings.push_back(t);
      // Under trace sampling the emission set needs the round summary
      // (critical worker, max-gap straggler), so events are emitted after
      // SummarizeRound instead; without sampling the stream is emitted
      // in arrival order as before.
      if (obs::TraceSamplingActive()) return;
      obs::InstantEvent("worker_timing", obs::WorkerTrack(worker),
                        {{"worker", worker},
                         {"round", round},
                         {"comp_s", t.comp_s},
                         {"comm_s", t.comm_s},
                         {"completion_s", t.completion_s},
                         {"ratio", t.ratio},
                         {"survived", t.survived ? 1 : 0}});
    };
    auto retire = [&](int worker) {
      strategy_->ObserveWorker(round, worker, kInf, 1.0, 0.0);
      if (redispatches[static_cast<size_t>(worker)] <
          options_.max_redispatch_per_round) {
        ++redispatches[static_cast<size_t>(worker)];
        obs::InstantEvent("redispatch", {{"worker", worker}, {"round", round}});
        dispatch_all({worker}, round);
      } else {
        obs::InstantEvent("park", {{"worker", worker}, {"round", round}});
        parked.push_back(worker);
      }
    };
    while (static_cast<int>(arrived.size()) < target_m && !queue.empty()) {
      const edge::Event event = queue.Pop();
      InFlight& f = inflight[static_cast<size_t>(event.worker)];
      if (event.tag != f.generation) continue;  // superseded dispatch
      if (f.consumed) {
        // Second delivery of a duplicated upload: already folded in (or
        // already handled), must not double-weight the worker.
        server_->NoteDuplicateDropped();
        ++duplicates;
        continue;
      }
      // Events pushed before an empty-round wait can sit slightly in the
      // past of the advanced clock; the PS processes them "now".
      if (event.time > clock.now()) clock.AdvanceTo(event.time);
      obs::SetLogicalTime(clock.now());
      f.consumed = true;
      if (f.failed) {
        obs::InstantEvent("failure_detect",
                          {{"worker", event.worker}, {"round", round}});
        note_timing(event.worker, f, /*completion=*/-1.0, /*survived=*/false);
        retire(event.worker);
        continue;
      }
      if (!server_->AcceptPayload(f.trained_weights)) {
        ++rejected;
        obs::InstantEvent("reject_corrupt",
                          {{"worker", event.worker}, {"round", round}});
        note_timing(event.worker, f, /*completion=*/-1.0, /*survived=*/false);
        retire(event.worker);
        continue;
      }
      obs::InstantEvent("arrival",
                        {{"worker", event.worker}, {"round", round}});
      arrived.push_back(event.worker);
      if (agg != nullptr) {
        // The inflight slot of an arrived worker stays untouched until the
        // post-aggregation re-dispatch, so the task reads it race-free.
        const int slot = static_cast<int>(arrived.size()) - 1;
        StreamingAggregator* a = agg.get();
        const InFlight* fp = &f;
        agg_tasks.Submit(slot, [a, fp, slot] {
          a->AccumulateWithResidual(slot, fp->trained_weights, fp->mask,
                                    fp->residual);
        });
        agg->Admit(slot);
      }
      const double duration = event.time - f.dispatch_time;
      note_timing(event.worker, f, duration, /*survived=*/true);
      arrival_durations.push_back(duration);
      duration_sum += duration;
      ++duration_count;
    }

    // Close this round's ledger before the post-aggregation re-dispatch
    // starts charging round+1; mid-round re-dispatches above already folded
    // into the current round.
    const obs::RoundResources round_res = ledger.Commit();
    ledger.BeginRound(round + 1);

    RoundRecord record;
    record.round = round;
    record.rejected_updates = rejected;
    record.duplicate_updates = duplicates;
    record.flops_total = round_res.total.flops();
    record.bytes_up = round_res.total.bytes_up;
    record.bytes_down = round_res.total.bytes_down;
    record.bytes_saved_ratio = round_res.BytesSavedRatio();

    if (arrived.empty()) {
      // Every candidate failed this round. Keep the previous global, let
      // the clock breathe, and bring the parked workers back next round.
      clock.Advance(options_.base.deadline.empty_round_wait);
      obs::SetLogicalTime(clock.now());
      coverage_.ObserveRound({});
    } else {
      // Update the global model from the recovered models (+ residuals).
      OBS_SPAN("aggregate",
               {{"round", round},
                {"updates", static_cast<int>(arrived.size())}});
      double final_loss_sum = 0.0, ratio_sum = 0.0;
      for (int worker : arrived) {
        const InFlight& f = inflight[static_cast<size_t>(worker)];
        final_loss_sum += f.final_loss;
        ratio_sum += f.ratio;
      }
      nn::TensorList sum;
      if (agg != nullptr) {
        agg_tasks.WaitAll();
        // Short rounds (m-fallback, drained queue) leave trailing slots
        // unused; retire them so the fold can complete.
        for (int j = static_cast<int>(arrived.size()); j < target_m; ++j) {
          agg->MarkUnavailable(j);
          agg->Reject(j);
        }
        StreamingAggregator::Result result = agg->Finish();
        sum = std::move(result.sum);
      } else {
        // Canonical-tree fold over the arrival-ordered contributions — the
        // association the streamed slots produce: their trailing unused
        // slots are holes, and a canonical tree whose holes sit only in the
        // tail reduces to the dense tree over the arrivals.
        std::function<nn::TensorList(int64_t, int64_t)> sum_range =
            [&](int64_t lo, int64_t hi) -> nn::TensorList {
          if (hi - lo == 1) {
            const int worker = arrived[static_cast<size_t>(lo)];
            const InFlight& f = inflight[static_cast<size_t>(worker)];
            nn::TensorList recovered;
            const Status st = pruning::RecoverToFullInto(
                global_spec, f.trained_weights, f.mask, &recovered);
            FEDMP_CHECK(st.ok()) << st;
            nn::AxpyLists(recovered, 1.0f, f.residual);
            return recovered;
          }
          const int64_t mid = CanonicalSplit(lo, hi);
          nn::TensorList left = sum_range(lo, mid);
          const nn::TensorList right = sum_range(mid, hi);
          nn::AxpyLists(left, 1.0f, right);
          return left;
        };
        sum = sum_range(0, static_cast<int64_t>(arrived.size()));
      }
      nn::ScaleLists(sum, 1.0f / static_cast<float>(arrived.size()));
      nn::TensorList mixed = server_->weights();
      nn::ScaleLists(mixed, static_cast<float>(1.0 - mixing));
      nn::AxpyLists(mixed, static_cast<float>(mixing), sum);
      server_->SetWeights(std::move(mixed));

      // Rewards for the arrivals (lines 8-10).
      double mean_time = 0.0;
      for (double d : arrival_durations) mean_time += d;
      mean_time /= static_cast<double>(arrival_durations.size());
      for (size_t j = 0; j < arrived.size(); ++j) {
        strategy_->ObserveWorker(
            round, arrived[j], arrival_durations[j], mean_time,
            inflight[static_cast<size_t>(arrived[j])].delta_loss);
      }

      std::vector<const pruning::PruneMask*> accepted_masks;
      for (int worker : arrived) {
        accepted_masks.push_back(&inflight[static_cast<size_t>(worker)].mask);
      }
      coverage_.ObserveRound(accepted_masks);

      record.train_loss =
          final_loss_sum / static_cast<double>(arrived.size());
      record.mean_ratio = ratio_sum / static_cast<double>(arrived.size());
    }

    record.sim_time = clock.now();
    record.round_seconds =
        log.empty() ? clock.now()
                    : clock.now() - log.records().back().sim_time;
    record.participants = static_cast<int64_t>(arrived.size());
    record.max_param_staleness = coverage_.max_staleness();
    const obs::analysis::RoundHealth health =
        obs::analysis::SummarizeRound(round, std::move(timings));
    record.critical_worker = health.critical_worker;
    record.critical_comp_s = health.critical_comp_s;
    record.critical_comm_s = health.critical_comm_s;
    record.straggler_gap_max = health.straggler_gap_max;
    if (obs::TraceSamplingActive()) {
      // Deferred, thinned emission (see note_timing): sampled workers plus
      // the critical worker and max-gap straggler; everyone else folds into
      // the rollup histogram and the exact aggregates below.
      const int straggler = obs::analysis::StragglerArgmax(health);
      for (const obs::analysis::WorkerTiming& t : health.workers) {
        if (t.worker != health.critical_worker && t.worker != straggler &&
            !obs::ShouldTraceWorker(round, t.worker, num_workers)) {
          if (obs::Enabled() && t.survived && t.completion_s >= 0.0) {
            static obs::Histogram* completion_hist = obs::GetHistogram(
                "fl.round.completion_s",
                {0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256});
            completion_hist->Observe(t.completion_s);
          }
          continue;
        }
        obs::InstantEvent("worker_timing", obs::WorkerTrack(t.worker),
                          {{"worker", t.worker},
                           {"round", round},
                           {"comp_s", t.comp_s},
                           {"comm_s", t.comm_s},
                           {"completion_s", t.completion_s},
                           {"ratio", t.ratio},
                           {"survived", t.survived ? 1 : 0}});
      }
      obs::InstantEvent("round_rollup", obs::PsTrack(),
                        {{"round", round},
                         {"workers", num_workers},
                         {"survivors", health.survivors},
                         {"mean_completion_s", health.mean_completion_s},
                         {"median_completion_s", health.median_completion_s},
                         {"straggler_gap_max", health.straggler_gap_max}});
    }

    // Re-dispatch this round's arrivals plus the parked workers. Coverage
    // and aggregation read the inflight slots, so this must come after.
    std::vector<int> next = arrived;
    next.insert(next.end(), parked.begin(), parked.end());
    if (!next.empty()) dispatch_all(next, round + 1);

    bool stop = round + 1 >= options_.base.max_rounds ||
                clock.now() >= options_.base.time_budget_seconds;
    const bool evaluated = round % options_.base.eval_every == 0 || stop;
    if (evaluated) {
      OBS_SPAN("evaluate", {{"round", round}});
      const auto eval = server_->Evaluate(
          task_->test, options_.base.eval_batch_size,
          task_->is_language_model, options_.base.eval_max_batches);
      record.test_accuracy = eval.accuracy;
      record.test_loss = eval.loss;
      if (task_->is_language_model) {
        record.test_perplexity = eval.perplexity;
      }
      if (options_.base.stop_at_accuracy > 0.0 &&
          eval.accuracy >= options_.base.stop_at_accuracy) {
        stop = true;
      }
      if (options_.base.verbose) {
        FEDMP_LOG(Info) << "Asyn-" << strategy_->Name() << " round "
                        << round << " t=" << record.sim_time
                        << " acc=" << eval.accuracy;
      }
    }
    obs::InstantEvent("round",
                      {{"round", record.round},
                       {"sim_time", record.sim_time},
                       {"round_seconds", record.round_seconds},
                       {"train_loss", record.train_loss},
                       {"mean_ratio", record.mean_ratio},
                       {"participants", record.participants},
                       {"rejected", record.rejected_updates},
                       {"duplicates", record.duplicate_updates},
                       {"staleness", record.max_param_staleness}});

    // --- Round-boundary watchdog + periodic health snapshot. ---
    if (obs::WatchdogActive()) {
      obs::WatchdogSignals signals;
      signals.round = round;
      signals.straggler_gap_max = health.straggler_gap_max;
      signals.median_completion_s = health.median_completion_s;
      signals.survivors = health.survivors;
      // Async rounds run the flat topology: no fog tier to watch.
      signals.round_wire_bytes = round_res.total.wire_bytes();
      signals.round_flops = round_res.total.flops();
      signals.evaluated = evaluated;
      signals.accuracy = record.test_accuracy;
      signals.peak_rss_bytes = PeakRssBytes();
      signals.model_cache_hit_rate = obs::Registry::Get().GaugeValue(
          "fl.worker.model_cache.hit_rate", -1.0);
      obs::WatchdogObserveRound(signals);
    }
    if (obs::HealthSnapshotDue(round)) obs::WriteHealthSnapshot(round);

    log.Add(record);
    if (stop) break;
  }
  obs::Flush();
  return log;
}

RoundLog RunFederatedAsync(const data::FlTask& task,
                           const std::vector<edge::DeviceProfile>& devices,
                           std::unique_ptr<Strategy> strategy,
                           const AsyncTrainerOptions& options) {
  Rng rng(options.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(devices.size()), rng);
  AsyncTrainer trainer(&task, devices, std::move(partition),
                       std::move(strategy), options);
  return trainer.Run();
}

}  // namespace fedmp::fl
