#include "fl/quantize.h"

#include <algorithm>
#include <cmath>

namespace fedmp::fl {

QuantizedTensor Quantize8(const nn::Tensor& tensor) {
  QuantizedTensor q;
  q.shape = tensor.shape();
  q.data.resize(static_cast<size_t>(tensor.numel()));
  if (tensor.numel() == 0) return q;
  const float* p = tensor.data();
  float lo = p[0], hi = p[0];
  for (int64_t i = 1; i < tensor.numel(); ++i) {
    lo = std::min(lo, p[i]);
    hi = std::max(hi, p[i]);
  }
  q.min_value = lo;
  q.scale = (hi - lo) / 255.0f;
  if (q.scale == 0.0f) {
    std::fill(q.data.begin(), q.data.end(), uint8_t{0});
    return q;
  }
  for (int64_t i = 0; i < tensor.numel(); ++i) {
    const float level = (p[i] - lo) / q.scale;
    q.data[static_cast<size_t>(i)] = static_cast<uint8_t>(
        std::min(255.0f, std::max(0.0f, std::round(level))));
  }
  return q;
}

nn::Tensor Dequantize(const QuantizedTensor& quantized) {
  nn::Tensor out(quantized.shape);
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    p[i] = quantized.min_value +
           quantized.scale *
               static_cast<float>(quantized.data[static_cast<size_t>(i)]);
  }
  return out;
}

QuantizedList Quantize8List(const nn::TensorList& tensors) {
  QuantizedList out;
  out.reserve(tensors.size());
  for (const nn::Tensor& t : tensors) out.push_back(Quantize8(t));
  return out;
}

nn::TensorList DequantizeList(const QuantizedList& quantized) {
  nn::TensorList out;
  out.reserve(quantized.size());
  for (const QuantizedTensor& q : quantized) out.push_back(Dequantize(q));
  return out;
}

double QuantizationErrorBound(const QuantizedTensor& quantized) {
  return 0.5 * static_cast<double>(quantized.scale);
}

int64_t QuantizedByteSize(const QuantizedList& quantized) {
  int64_t total = 0;
  for (const QuantizedTensor& q : quantized) total += q.ByteSize();
  return total;
}

int64_t Float32ByteSize(const nn::TensorList& tensors) {
  return nn::TotalNumel(tensors) * static_cast<int64_t>(sizeof(float));
}

}  // namespace fedmp::fl
