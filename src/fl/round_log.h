#ifndef FEDMP_FL_ROUND_LOG_H_
#define FEDMP_FL_ROUND_LOG_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/csv.h"

namespace fedmp::fl {

// Everything an experiment records about one FL round. sim_time is the
// simulated clock at the END of the round; metrics columns are NaN on
// rounds without evaluation.
struct RoundRecord {
  int64_t round = 0;
  double sim_time = 0.0;
  double round_seconds = 0.0;
  double train_loss = 0.0;       // mean final local loss of participants
  double mean_ratio = 0.0;       // mean pruning ratio this round
  double test_accuracy = -1.0;   // -1 when not evaluated
  double test_loss = -1.0;
  double test_perplexity = -1.0;
  double decision_overhead_ms = 0.0;  // PS-side: ratio decision + pruning
  int64_t participants = 0;
  // Fault observability (0 on clean rounds): updates the PS refused as
  // corrupt, duplicate deliveries it dropped, and the worst
  // rounds-since-trained staleness over prunable units (see
  // fl::ParameterCoverage).
  int64_t rejected_updates = 0;
  int64_t duplicate_updates = 0;
  int64_t max_param_staleness = 0;
  // Round health (obs/analysis/round_health.h): the worker the simulated
  // critical path runs through, its comp/comm split, and the largest
  // |T_n - mean(T)| straggler gap (Eq. 8's denominator). -1 / 0 when no
  // worker survived the round.
  int64_t critical_worker = -1;
  double critical_comp_s = 0.0;
  double critical_comm_s = 0.0;
  double straggler_gap_max = 0.0;
  // Resource ledger rollup (obs/ledger.h): exact forward+backward MACs and
  // wire bytes across the round's dispatched workers, and the fraction of
  // the dense-baseline bytes that pruning/compression saved.
  int64_t flops_total = 0;
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  double bytes_saved_ratio = 0.0;
};

// Per-run record sequence plus the derived summary statistics the paper's
// tables and figures report.
class RoundLog {
 public:
  void Add(const RoundRecord& record) { records_.push_back(record); }
  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  // Simulated time at which test accuracy first reached `target`;
  // -1 if never (time-to-accuracy, Figs. 8-10, 12).
  double TimeToAccuracy(double target) const;
  // Simulated time at which perplexity first dropped to `target`; -1 never.
  double TimeToPerplexity(double target) const;
  // Best accuracy among evaluations with sim_time <= budget (Table III).
  double BestAccuracyWithin(double time_budget) const;
  // Best (lowest) perplexity within the budget (Table IV); -1 if none.
  double BestPerplexityWithin(double time_budget) const;
  // Accuracy of the last evaluated round.
  double FinalAccuracy() const;
  // Mean decision overhead across rounds (Fig. 11).
  double MeanDecisionOverheadMs() const;
  double TotalSimTime() const;

  // CSV view. Columns come from the single column table in round_log.cc,
  // so ToTable() and ToJsonl() can never drift apart.
  CsvTable ToTable() const;

  // Structured view: one JSON object per round, same columns and numeric
  // formatting as the CSV (ints as JSON ints, doubles fixed-precision).
  // Schema documented in DESIGN.md ("Observability").
  void ToJsonl(std::ostream& os) const;
  std::string ToJsonlString() const;
  Status WriteJsonlFile(const std::string& path) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_ROUND_LOG_H_
