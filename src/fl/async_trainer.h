#ifndef FEDMP_FL_ASYNC_TRAINER_H_
#define FEDMP_FL_ASYNC_TRAINER_H_

#include <memory>

#include "fl/trainer.h"

namespace fedmp::fl {

struct AsyncTrainerOptions {
  TrainerOptions base;
  // Algorithm 2: the PS aggregates the first m arrivals per round.
  int m = 5;
  // Staleness mixing: new_global = (1-mix)*global + mix*aggregate(m).
  // <=0 selects the default m/N. Mixing is needed because the aggregate of
  // m workers carries residuals from their (possibly stale) dispatch-time
  // globals; with mix = 1 and m << N old snapshots would overwrite fresh
  // progress.
  double mixing = -1.0;
};

// Asynchronous FedMP engine (Algorithm 2). Workers run continuously; when a
// worker's update arrives the PS may fold it into the global model. Every
// aggregation of m arrivals counts as one "round" for logging/evaluation.
// The strategy must SupportsAsync() (FedMpStrategy -> Asyn-FedMP,
// SynFlStrategy -> Asyn-FL [43]).
class AsyncTrainer {
 public:
  AsyncTrainer(const data::FlTask* task,
               std::vector<edge::DeviceProfile> devices,
               data::Partition partition, std::unique_ptr<Strategy> strategy,
               const AsyncTrainerOptions& options);

  RoundLog Run();

  const ParameterServer& server() const { return *server_; }

 private:
  const data::FlTask* task_;
  std::vector<edge::DeviceProfile> devices_;
  std::unique_ptr<Strategy> strategy_;
  AsyncTrainerOptions options_;
  std::unique_ptr<ParameterServer> server_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Rng rng_;
};

// Convenience wrapper with an IID partition.
RoundLog RunFederatedAsync(const data::FlTask& task,
                           const std::vector<edge::DeviceProfile>& devices,
                           std::unique_ptr<Strategy> strategy,
                           const AsyncTrainerOptions& options);

}  // namespace fedmp::fl

#endif  // FEDMP_FL_ASYNC_TRAINER_H_
