#ifndef FEDMP_FL_ASYNC_TRAINER_H_
#define FEDMP_FL_ASYNC_TRAINER_H_

#include <memory>

#include "fl/trainer.h"

namespace fedmp::fl {

struct AsyncTrainerOptions {
  TrainerOptions base;
  // Algorithm 2: the PS aggregates the first m arrivals per round. When
  // fault injection leaves fewer than m workers alive, the PS falls back to
  // aggregating every valid arrival it can still collect (and skips the
  // round entirely when there are none).
  int m = 5;
  // Staleness mixing: new_global = (1-mix)*global + mix*aggregate(m).
  // <=0 selects the default m/N. Mixing is needed because the aggregate of
  // m workers carries residuals from their (possibly stale) dispatch-time
  // globals; with mix = 1 and m << N old snapshots would overwrite fresh
  // progress.
  double mixing = -1.0;
  // Async analogue of the sync deadline policy (base.deadline): once a full
  // cohort of arrivals has been observed, a dispatch whose simulated
  // duration exceeds slack * mean-arrival-duration is timed out — the PS
  // stops waiting at the limit, discards the update, and re-dispatches the
  // worker. Off by default because Algorithm 2 itself never drops
  // stragglers (they are simply aggregated in a later round).
  bool apply_deadline_timeout = false;
  // How many times per round the PS re-dispatches a worker whose arrival
  // failed (crash, lost/corrupt upload, timeout) before parking it until
  // the next round. Bounds the work a permanently-failing worker can burn.
  int max_redispatch_per_round = 3;
};

// Asynchronous FedMP engine (Algorithm 2). Workers run continuously; when a
// worker's update arrives the PS may fold it into the global model. Every
// aggregation of m arrivals counts as one "round" for logging/evaluation.
// The strategy must SupportsAsync() (FedMpStrategy -> Asyn-FedMP,
// SynFlStrategy -> Asyn-FL [43]).
//
// Fault handling (base.faults / base.crash_prob): faults are drawn at
// dispatch time from the same deterministic FaultPlan as the sync engine.
// A crashed worker or lost upload surfaces as a failure detection at the
// would-be arrival time; corrupt payloads arrive but are screened out by
// the PS; duplicated deliveries are deduplicated by dispatch generation.
// Failed workers are re-dispatched (bounded per round), so the engine
// degrades gracefully instead of stalling.
class AsyncTrainer {
 public:
  AsyncTrainer(const data::FlTask* task,
               std::vector<edge::DeviceProfile> devices,
               data::Partition partition, std::unique_ptr<Strategy> strategy,
               const AsyncTrainerOptions& options);

  RoundLog Run();

  const ParameterServer& server() const { return *server_; }

 private:
  const data::FlTask* task_;
  std::vector<edge::DeviceProfile> devices_;
  std::unique_ptr<Strategy> strategy_;
  AsyncTrainerOptions options_;
  std::unique_ptr<ParameterServer> server_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Rng rng_;
  edge::FaultPlan fault_plan_;
  ParameterCoverage coverage_;
};

// Convenience wrapper with an IID partition.
RoundLog RunFederatedAsync(const data::FlTask& task,
                           const std::vector<edge::DeviceProfile>& devices,
                           std::unique_ptr<Strategy> strategy,
                           const AsyncTrainerOptions& options);

}  // namespace fedmp::fl

#endif  // FEDMP_FL_ASYNC_TRAINER_H_
