#ifndef FEDMP_FL_HIERARCHY_H_
#define FEDMP_FL_HIERARCHY_H_

#include <memory>
#include <utility>
#include <vector>

#include "fl/pipeline.h"

namespace fedmp::fl {

// Hierarchical (fog-tier) R2SP aggregation for scale-out rounds.
//
// Edge deployments at 10k+ workers do not upload to one parameter server:
// regional aggregators ("fog" nodes) each own a contiguous slice of the
// worker-slot range, reduce their slice locally, and the PS folds the fog
// partials. This class reproduces that topology in-process:
//
//   - the slot range [0, num_slots) is partitioned into `fan_out` slices by
//     CanonicalRangeSlices — every slice IS a node of the canonical
//     reduction tree (common/range_tree.h), so each fog's partial sum is a
//     well-defined subtree sum of the flat reduction;
//   - each fog runs its own StreamingAggregator over its slice (the local
//     tree over [lo, hi) has the same shape as the global subtree: the
//     canonical split depends only on range width, so trees translate);
//   - Finish() folds the fog partials by descending the canonical tree
//     until it reaches slice boundaries, merging left-then-right.
//
// The result is bit-identical to flat AggregateSubModels / a single
// StreamingAggregator at ANY fan_out, thread count, and arrival order —
// including rounds with rejected/unavailable slots (holes pass through both
// tiers without a float op) and fully-down regions (an all-hole fog yields
// an empty partial, which the fold skips).
//
// Peak memory is the sum of the per-fog live sets: with a bounded in-flight
// window it stays O(fan_out x log(slice) + window) models, never
// O(num_slots) — the property the bounded-memory scale tests pin.
//
// Protocol and thread-safety are exactly StreamingAggregator's, addressed
// by global slot index; the class routes to the owning fog internally.
class HierarchicalAggregator {
 public:
  // fan_out <= 1 degenerates to a single fog over the whole range (the flat
  // streaming path). fan_out is clamped to num_slots. `ps_shards` is the
  // requested PS shard count (fl/ps_shard.h): Finish() partitions the slot
  // range into min(resolved shards, num_fogs) canonical slices — the
  // refinement property guarantees each fog slice nests in exactly one
  // shard — and folds each shard's fogs on its own pool lane, the serial
  // top-tree tail overlapping the still-running folds. The same request is
  // forwarded to each fog's StreamingAggregator as its lock-shard count.
  HierarchicalAggregator(const nn::ModelSpec& spec,
                         const nn::TensorList& global_weights, int num_slots,
                         SyncScheme scheme, bool quantize_residuals,
                         int fan_out, int ps_shards = 0);

  HierarchicalAggregator(const HierarchicalAggregator&) = delete;
  HierarchicalAggregator& operator=(const HierarchicalAggregator&) = delete;

  void Accumulate(int slot, const nn::TensorList& sub_weights,
                  const pruning::PruneMask& mask);
  void AccumulateWithResidual(int slot, const nn::TensorList& sub_weights,
                              const pruning::PruneMask& mask,
                              const nn::TensorList& residual);
  void MarkUnavailable(int slot);
  void Admit(int slot);
  void Reject(int slot);

  // Folds the fog partials in canonical order: each PS shard descends the
  // canonical tree over its own slice on its own pool lane, collecting and
  // merging its fogs' partials as it goes (never materializing more than
  // the descent spine — O(log fogs) partials live per shard, not O(fogs)),
  // and the caller merges shard results up the top tree as they complete.
  // Shard count never changes the bits (every shard is a canonical node);
  // with one shard this is exactly the serial in-order fold.
  //
  // Emits one fog_aggregate span per fog (with its slot range) and then the
  // same r2sp_aggregate span + fl.aggregations / fl.updates_aggregated
  // counters the flat paths emit — in fixed fog order from the calling
  // thread, so the deterministic JSONL export is invariant to topology,
  // shard count, and thread count (the per-lane ps_shard_fold spans live on
  // pool tracks, which never reach the logical export). Requires at least
  // one admitted slot overall; individual fogs may be empty (fully down
  // regions).
  StreamingAggregator::Result Finish();

  int num_fogs() const { return static_cast<int>(slices_.size()); }
  // The fog owning a global slot index.
  int fog_of(int slot) const;
  // The slot range [lo, hi) owned by fog f.
  std::pair<int, int> fog_range(int f) const {
    return {static_cast<int>(slices_[static_cast<size_t>(f)].first),
            static_cast<int>(slices_[static_cast<size_t>(f)].second)};
  }
  // Admitted-upload count per fog this round (index = fog id). Feeds the
  // watchdog's fog-silence rule. Admit() is only ever called from the
  // driver/event-loop thread (unlike Accumulate, which may run on pool
  // lanes), so plain counters suffice; read after the round completes.
  const std::vector<int64_t>& fog_admitted() const { return fog_admitted_; }

 private:
  struct Route {
    StreamingAggregator* fog;
    int local_slot;
  };
  Route RouteOf(int slot);

  const SyncScheme scheme_;
  const int num_slots_;
  const int ps_shards_requested_;
  std::vector<std::pair<int64_t, int64_t>> slices_;
  std::vector<std::unique_ptr<StreamingAggregator>> fogs_;
  std::vector<int64_t> fog_admitted_;
};

}  // namespace fedmp::fl

#endif  // FEDMP_FL_HIERARCHY_H_
