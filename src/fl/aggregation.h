#ifndef FEDMP_FL_AGGREGATION_H_
#define FEDMP_FL_AGGREGATION_H_

#include <vector>

#include "common/statusor.h"
#include "pruning/mask.h"
#include "pruning/recovery.h"
#include "pruning/sparsify.h"

namespace fedmp::fl {

// Parameter synchronization schemes for sub-models with diverse structures
// (§III-C / §V-D).
enum class SyncScheme {
  // Residual Recovery Synchronous Parallel: each sub-model is recovered to
  // full shape and its residual model (global - sparse(global)) is added
  // back, so pruned units keep their weights across rounds:
  //   global' = (1/|S|) sum_n (recover(sub_n) + residual_n)
  kR2SP,
  // Plain BSP over recovered sub-models: pruned coordinates contribute
  // zero and decay — the baseline R2SP is compared against in Fig. 7.
  kBSP,
};

const char* SyncSchemeName(SyncScheme scheme);

// One worker's contribution to a round of aggregation. An entry with both
// pointers null is a hole — a slot whose worker did not participate this
// round (crashed, rejected, dropped). Holes contribute nothing and are not
// counted in the average, but they keep the updates vector aligned to the
// worker-slot layout, which is what makes the streamed and hierarchical
// aggregators (fl/pipeline.h, fl/hierarchy.h) bit-identical to this serial
// oracle: all of them associate additions by the same canonical reduction
// tree over the slot range (common/range_tree.h).
struct SubModelUpdate {
  const pruning::PruneMask* mask = nullptr;     // mask it was pruned with
  const nn::TensorList* weights = nullptr;      // trained sub-model weights

  bool is_hole() const { return weights == nullptr; }
};

// Aggregates the participants' sub-models against the dispatch-time global
// model `global_weights` under `scheme`. All masks must validate against
// `global_spec`. With `quantize_residuals`, residual models pass through
// 8-bit quantization (§III-C's PS memory optimization; see fl/quantize.h) —
// the aggregate then carries the small reconstruction error.
//
// Association contract: contributions are summed along the canonical
// reduction tree over [0, updates.size()) with holes passing through, never
// by a left fold. Per-subtree sums are therefore well-defined, which is what
// lets the fog tier compute regional partials and still reproduce this
// function's bits exactly (see fl/hierarchy.h). Peak memory is
// O(log(updates) x model): the depth-first descent holds one partial per
// tree level, never all recovered models.
StatusOr<nn::TensorList> AggregateSubModels(
    const nn::ModelSpec& global_spec, const nn::TensorList& global_weights,
    const std::vector<SubModelUpdate>& updates, SyncScheme scheme,
    bool quantize_residuals = false);

// Plain FedAvg over full (unpruned) models.
nn::TensorList FedAvg(const std::vector<const nn::TensorList*>& weights);

// FlexCom-style update sparsification: keeps the largest-magnitude fraction
// (1 - compress_ratio) of the update (trained - reference) entries and
// returns reference + sparsified update. compress_ratio in [0, 1).
nn::TensorList SparsifyUpdate(const nn::TensorList& reference,
                              const nn::TensorList& trained,
                              double compress_ratio);

}  // namespace fedmp::fl

#endif  // FEDMP_FL_AGGREGATION_H_
