#ifndef FEDMP_FL_QUANTIZE_H_
#define FEDMP_FL_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "nn/tensor_ops.h"

namespace fedmp::fl {

// §III-C: "we can quantize each parameter in residual models with fewer
// bits to further reduce the memory overhead ... the memory occupied by the
// residual model is only 10-20% of that by the original model."
//
// Affine per-tensor uint8 quantization: q = round((v - min) / scale),
// v' = min + q * scale. A quantized tensor occupies ~25% of the float32
// original (plus two floats of metadata).

struct QuantizedTensor {
  std::vector<int64_t> shape;
  std::vector<uint8_t> data;
  float min_value = 0.0f;
  float scale = 0.0f;  // 0 for constant tensors

  int64_t ByteSize() const {
    return static_cast<int64_t>(data.size() + sizeof(float) * 2 +
                                shape.size() * sizeof(int64_t));
  }
};

using QuantizedList = std::vector<QuantizedTensor>;

QuantizedTensor Quantize8(const nn::Tensor& tensor);
nn::Tensor Dequantize(const QuantizedTensor& quantized);

QuantizedList Quantize8List(const nn::TensorList& tensors);
nn::TensorList DequantizeList(const QuantizedList& quantized);

// Worst-case absolute reconstruction error of a quantized tensor:
// half a quantization step.
double QuantizationErrorBound(const QuantizedTensor& quantized);

// Total bytes of a quantized list vs its float32 original.
int64_t QuantizedByteSize(const QuantizedList& quantized);
int64_t Float32ByteSize(const nn::TensorList& tensors);

}  // namespace fedmp::fl

#endif  // FEDMP_FL_QUANTIZE_H_
