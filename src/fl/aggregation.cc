#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/range_tree.h"
#include "fl/quantize.h"
#include "nn/tensor_ops.h"
#include "obs/trace.h"

namespace fedmp::fl {

const char* SyncSchemeName(SyncScheme scheme) {
  switch (scheme) {
    case SyncScheme::kR2SP: return "R2SP";
    case SyncScheme::kBSP: return "BSP";
  }
  return "?";
}

StatusOr<nn::TensorList> AggregateSubModels(
    const nn::ModelSpec& global_spec, const nn::TensorList& global_weights,
    const std::vector<SubModelUpdate>& updates, SyncScheme scheme,
    bool quantize_residuals) {
  int participants = 0;
  for (const SubModelUpdate& update : updates) {
    if (update.is_hole()) {
      FEDMP_CHECK(update.mask == nullptr) << "hole with a mask";
      continue;
    }
    FEDMP_CHECK(update.mask != nullptr);
    ++participants;
  }
  if (participants == 0) {
    return InvalidArgumentError("aggregation with no participants");
  }
  OBS_SPAN("r2sp_aggregate",
           {{"scheme", SyncSchemeName(scheme)},
            {"updates", participants}});
  if (obs::Enabled()) {
    static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
    static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
    aggs->Add(1.0);
    upd->Add(static_cast<double>(participants));
  }
  // Depth-first canonical-tree sum (see the header's association contract).
  // Returns an empty list for all-hole subtrees; holes never cost a float
  // op, so the bits only depend on which slots participate, not on how many
  // holes surround them.
  Status status = Status::Ok();
  std::function<nn::TensorList(int64_t, int64_t)> sum_range =
      [&](int64_t lo, int64_t hi) -> nn::TensorList {
    if (!status.ok()) return {};
    if (hi - lo == 1) {
      const SubModelUpdate& update = updates[static_cast<size_t>(lo)];
      if (update.is_hole()) return {};
      nn::TensorList contribution;
      Status st = pruning::RecoverToFullInto(
          global_spec, *update.weights, *update.mask, &contribution);
      if (st.ok() && scheme == SyncScheme::kR2SP) {
        nn::TensorList residual;
        st = pruning::ResidualModelInto(global_spec, global_weights,
                                        *update.mask, &residual);
        if (st.ok()) {
          if (quantize_residuals) {
            residual = DequantizeList(Quantize8List(residual));
          }
          nn::AxpyLists(contribution, 1.0f, residual);
        }
      }
      if (!st.ok()) {
        status = st;
        return {};
      }
      return contribution;
    }
    const int64_t mid = CanonicalSplit(lo, hi);
    nn::TensorList left = sum_range(lo, mid);
    nn::TensorList right = sum_range(mid, hi);
    if (left.empty()) return right;
    if (!right.empty()) nn::AxpyLists(left, 1.0f, right);
    return left;
  };
  nn::TensorList sum = sum_range(0, static_cast<int64_t>(updates.size()));
  FEDMP_RETURN_IF_ERROR(status);
  nn::ScaleLists(sum, 1.0f / static_cast<float>(participants));
  return sum;
}

nn::TensorList FedAvg(const std::vector<const nn::TensorList*>& weights) {
  FEDMP_CHECK(!weights.empty());
  nn::TensorList sum = *weights[0];
  for (size_t i = 1; i < weights.size(); ++i) {
    nn::AxpyLists(sum, 1.0f, *weights[i]);
  }
  nn::ScaleLists(sum, 1.0f / static_cast<float>(weights.size()));
  return sum;
}

nn::TensorList SparsifyUpdate(const nn::TensorList& reference,
                              const nn::TensorList& trained,
                              double compress_ratio) {
  FEDMP_CHECK(compress_ratio >= 0.0 && compress_ratio < 1.0);
  if (compress_ratio == 0.0) return trained;
  nn::TensorList update = nn::SubLists(trained, reference);

  // Global top-k by |delta| across all tensors.
  std::vector<float> magnitudes;
  magnitudes.reserve(static_cast<size_t>(nn::TotalNumel(update)));
  for (const nn::Tensor& t : update) {
    const float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      magnitudes.push_back(std::fabs(p[i]));
    }
  }
  const size_t keep = static_cast<size_t>(
      std::llround((1.0 - compress_ratio) *
                   static_cast<double>(magnitudes.size())));
  if (keep == 0) return reference;
  if (keep >= magnitudes.size()) return trained;
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + (magnitudes.size() - keep),
                   magnitudes.end());
  const float threshold = magnitudes[magnitudes.size() - keep];

  nn::TensorList out = reference;
  for (size_t t = 0; t < update.size(); ++t) {
    const float* pu = update[t].data();
    float* po = out[t].data();
    for (int64_t i = 0; i < update[t].numel(); ++i) {
      if (std::fabs(pu[i]) >= threshold) po[i] += pu[i];
    }
  }
  return out;
}

}  // namespace fedmp::fl
