#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>

#include "fl/quantize.h"
#include "nn/tensor_ops.h"
#include "obs/trace.h"

namespace fedmp::fl {

const char* SyncSchemeName(SyncScheme scheme) {
  switch (scheme) {
    case SyncScheme::kR2SP: return "R2SP";
    case SyncScheme::kBSP: return "BSP";
  }
  return "?";
}

StatusOr<nn::TensorList> AggregateSubModels(
    const nn::ModelSpec& global_spec, const nn::TensorList& global_weights,
    const std::vector<SubModelUpdate>& updates, SyncScheme scheme,
    bool quantize_residuals) {
  if (updates.empty()) {
    return InvalidArgumentError("aggregation with no participants");
  }
  OBS_SPAN("r2sp_aggregate",
           {{"scheme", SyncSchemeName(scheme)},
            {"updates", static_cast<int>(updates.size())}});
  if (obs::Enabled()) {
    static obs::Counter* aggs = obs::GetCounter("fl.aggregations");
    static obs::Counter* upd = obs::GetCounter("fl.updates_aggregated");
    aggs->Add(1.0);
    upd->Add(static_cast<double>(updates.size()));
  }
  nn::TensorList sum;
  nn::TensorList recovered;  // scratch lists reused across updates
  nn::TensorList residual;
  for (const SubModelUpdate& update : updates) {
    FEDMP_CHECK(update.mask != nullptr && update.weights != nullptr);
    FEDMP_RETURN_IF_ERROR(pruning::RecoverToFullInto(
        global_spec, *update.weights, *update.mask, &recovered));
    if (scheme == SyncScheme::kR2SP) {
      FEDMP_RETURN_IF_ERROR(pruning::ResidualModelInto(
          global_spec, global_weights, *update.mask, &residual));
      if (quantize_residuals) {
        residual = DequantizeList(Quantize8List(residual));
      }
      nn::AxpyLists(recovered, 1.0f, residual);
    }
    if (sum.empty()) {
      sum = std::move(recovered);  // first update seeds the sum
    } else {
      nn::AxpyLists(sum, 1.0f, recovered);
    }
  }
  nn::ScaleLists(sum, 1.0f / static_cast<float>(updates.size()));
  return sum;
}

nn::TensorList FedAvg(const std::vector<const nn::TensorList*>& weights) {
  FEDMP_CHECK(!weights.empty());
  nn::TensorList sum = *weights[0];
  for (size_t i = 1; i < weights.size(); ++i) {
    nn::AxpyLists(sum, 1.0f, *weights[i]);
  }
  nn::ScaleLists(sum, 1.0f / static_cast<float>(weights.size()));
  return sum;
}

nn::TensorList SparsifyUpdate(const nn::TensorList& reference,
                              const nn::TensorList& trained,
                              double compress_ratio) {
  FEDMP_CHECK(compress_ratio >= 0.0 && compress_ratio < 1.0);
  if (compress_ratio == 0.0) return trained;
  nn::TensorList update = nn::SubLists(trained, reference);

  // Global top-k by |delta| across all tensors.
  std::vector<float> magnitudes;
  magnitudes.reserve(static_cast<size_t>(nn::TotalNumel(update)));
  for (const nn::Tensor& t : update) {
    const float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      magnitudes.push_back(std::fabs(p[i]));
    }
  }
  const size_t keep = static_cast<size_t>(
      std::llround((1.0 - compress_ratio) *
                   static_cast<double>(magnitudes.size())));
  if (keep == 0) return reference;
  if (keep >= magnitudes.size()) return trained;
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + (magnitudes.size() - keep),
                   magnitudes.end());
  const float threshold = magnitudes[magnitudes.size() - keep];

  nn::TensorList out = reference;
  for (size_t t = 0; t < update.size(); ++t) {
    const float* pu = update[t].data();
    float* po = out[t].data();
    for (int64_t i = 0; i < update[t].numel(); ++i) {
      if (std::fabs(pu[i]) >= threshold) po[i] += pu[i];
    }
  }
  return out;
}

}  // namespace fedmp::fl
