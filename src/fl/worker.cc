#include "fl/worker.h"

#include <atomic>
#include <cstdlib>

#include "data/synthetic_text.h"
#include "nn/flops.h"
#include "nn/layers/softmax_xent.h"
#include "obs/metrics.h"

namespace fedmp::fl {

namespace {

// One reusable (model, optimizer) pair per sub-model architecture a lane
// has trained. FedMP hands workers the same handful of pruned specs round
// after round; rebuilding the model each time re-runs weight init that
// SetWeights immediately overwrites.
struct ModelCacheEntry {
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<nn::Sgd> sgd;
  uint64_t last_used = 0;
};

// The cache is PER EXECUTION LANE (thread_local), shared by every Worker
// the lane drives. Per-Worker caches fall apart at both ends of the scale
// axis: 10k workers each holding models is O(fleet x model) memory, and a
// short cold-start run spreads the same few architectures across hundreds
// of private caches, paying the build cost per worker instead of per arch
// (the PR-5 bench regression). Lane caches bound live models at
// lanes x cap and let one warm-up serve the whole fleet. Entries are reset
// to fresh-build state on every hit, so sharing never changes trained bits.
struct LaneCache {
  std::vector<ModelCacheEntry> entries;
  uint64_t clock = 0;
  uint64_t epoch = 0;  // lags g_cache_epoch until the next lookup clears
};

thread_local LaneCache g_lane_cache;
std::atomic<uint64_t> g_cache_epoch{0};

// Covers the full ratio grid a strategy sweeps (the theta grid induces ~15
// distinct pruned architectures incl. the full model); LRU eviction keeps
// memory bounded when a run sweeps more.
constexpr size_t kModelCacheCap = 16;

std::atomic<bool> g_reuse_enabled{true};
std::atomic<bool> g_reuse_env_checked{false};

void MaybeReadReuseEnv() {
  if (g_reuse_env_checked.exchange(true)) return;
  const char* reuse = std::getenv("FEDMP_MODEL_REUSE");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((reuse != nullptr && reuse[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_reuse_enabled.store(false, std::memory_order_relaxed);
  }
}

void CountModelCache(bool hit) {
  if (!obs::Enabled()) return;
  static obs::Counter* hits = obs::GetCounter("fl.worker.model_cache.hits");
  static obs::Counter* misses =
      obs::GetCounter("fl.worker.model_cache.misses");
  static obs::Gauge* rate = obs::GetGauge("fl.worker.model_cache.hit_rate");
  static std::atomic<int64_t> hit_count{0};
  static std::atomic<int64_t> total_count{0};
  (hit ? hits : misses)->Add(1.0);
  const int64_t h =
      hit_count.fetch_add(hit ? 1 : 0, std::memory_order_relaxed) +
      (hit ? 1 : 0);
  const int64_t t = total_count.fetch_add(1, std::memory_order_relaxed) + 1;
  rate->Set(static_cast<double>(h) / static_cast<double>(t));
}

// Cache keying ignores the spec's display name: pruning names sub-specs
// "<task>-sub", so a ratio-0 round (full model) would otherwise never match
// the cached full spec. Architecture identity is what determines whether a
// built model can be reused.
bool SameArchitecture(const nn::ModelSpec& a, const nn::ModelSpec& b) {
  return a.input.kind == b.input.kind && a.input.c == b.input.c &&
         a.input.h == b.input.h && a.input.w == b.input.w &&
         a.input.f == b.input.f && a.input.t == b.input.t &&
         a.num_classes == b.num_classes && a.layers == b.layers;
}

// Returns this lane's cache entry for `spec` reset to fresh-build state
// (dropout stream reseeded with `seed`, optimizer Reset), building one on
// miss and evicting the least-recently-used entry past the cap.
ModelCacheEntry& CachedModel(const nn::ModelSpec& spec, uint64_t seed,
                             const nn::SgdOptions& sgd_options) {
  LaneCache& cache = g_lane_cache;
  const uint64_t epoch = g_cache_epoch.load(std::memory_order_relaxed);
  if (cache.epoch != epoch) {
    cache.entries.clear();
    cache.epoch = epoch;
  }
  ++cache.clock;
  for (ModelCacheEntry& e : cache.entries) {
    if (SameArchitecture(e.model->spec(), spec)) {
      e.last_used = cache.clock;
      e.model->ReseedDropout(seed);
      e.sgd->Reset(sgd_options);
      CountModelCache(/*hit=*/true);
      return e;
    }
  }
  CountModelCache(/*hit=*/false);
  if (cache.entries.size() >= kModelCacheCap) {
    size_t lru = 0;
    for (size_t i = 1; i < cache.entries.size(); ++i) {
      if (cache.entries[i].last_used < cache.entries[lru].last_used) lru = i;
    }
    cache.entries.erase(cache.entries.begin() + static_cast<ptrdiff_t>(lru));
  }
  ModelCacheEntry entry;
  entry.model = nn::BuildModelOrDie(spec, seed);
  entry.sgd = std::make_unique<nn::Sgd>(sgd_options);
  entry.last_used = cache.clock;
  cache.entries.push_back(std::move(entry));
  return cache.entries.back();
}

}  // namespace

void ClearModelCache() {
  g_cache_epoch.fetch_add(1, std::memory_order_relaxed);
}

bool ModelReuseEnabled() {
  MaybeReadReuseEnv();
  return g_reuse_enabled.load(std::memory_order_relaxed);
}

void SetModelReuseEnabled(bool on) {
  g_reuse_env_checked.store(true);  // explicit choice overrides the env
  g_reuse_enabled.store(on, std::memory_order_relaxed);
}

Worker::Worker(int id, const data::Dataset* train,
               std::vector<int64_t> shard, edge::DeviceProfile profile,
               uint64_t seed)
    : id_(id),
      train_(train),
      shard_(std::move(shard)),
      profile_(std::move(profile)),
      rng_(seed) {
  FEDMP_CHECK(train != nullptr);
  FEDMP_CHECK(!shard_.empty()) << "worker " << id << " has an empty shard";
  loader_indices_size_ = static_cast<int64_t>(shard_.size());
}

Worker::Worker(int id, const data::Dataset* train,
               const data::PartitionView* view, edge::DeviceProfile profile,
               uint64_t seed)
    : id_(id),
      train_(train),
      view_(view),
      profile_(std::move(profile)),
      rng_(seed) {
  FEDMP_CHECK(train != nullptr);
  FEDMP_CHECK(view != nullptr);
  loader_indices_size_ = view->shard_size(id);
  FEDMP_CHECK_GT(loader_indices_size_, 0)
      << "worker " << id << " has an empty shard";
}

int64_t Worker::PlannedRows(const LocalTrainOptions& options) const {
  // Mirrors the loader selection below: streaming mode and batch-size
  // changes start from a fresh cursor; the persistent eager loader carries
  // its position across rounds.
  int64_t cursor = 0;
  if (view_ == nullptr && loader_ != nullptr &&
      loader_batch_ == options.batch_size) {
    cursor = loader_->cursor();
  }
  return nn::PlannedLoaderRows(loader_indices_size_, options.batch_size,
                               cursor, options.tau);
}

LocalResult Worker::LocalTrain(const nn::ModelSpec& spec,
                               const nn::TensorList& weights,
                               const LocalTrainOptions& options) {
  std::unique_ptr<data::DataLoader> round_loader;
  data::DataLoader* loader;
  if (view_ != nullptr) {
    // Streaming mode: materialize the shard for this call only; both the
    // index vector and the loader die with the round.
    round_loader = std::make_unique<data::DataLoader>(
        train_, view_->Shard(id_), options.batch_size, /*shuffle=*/true,
        rng_.NextU64());
    loader = round_loader.get();
  } else {
    if (loader_ == nullptr || loader_batch_ != options.batch_size) {
      loader_ = std::make_unique<data::DataLoader>(
          train_, shard_, options.batch_size, /*shuffle=*/true,
          rng_.NextU64());
      loader_batch_ = options.batch_size;
    }
    loader = loader_.get();
  }

  nn::SgdOptions sgd_options;
  sgd_options.learning_rate = options.learning_rate;
  sgd_options.momentum = options.momentum;
  sgd_options.weight_decay = options.weight_decay;
  sgd_options.proximal_mu = options.proximal_mu;
  sgd_options.clip_norm = options.clip_norm;

  // The model seed is drawn unconditionally so the cached and fresh paths
  // consume the same rng_ stream — everything downstream (future rounds'
  // seeds) is unchanged by reuse.
  const uint64_t model_seed = rng_.NextU64();
  std::unique_ptr<nn::Model> fresh_model;
  std::unique_ptr<nn::Sgd> fresh_sgd;
  nn::Model* model;
  nn::Sgd* sgd;
  if (ModelReuseEnabled()) {
    ModelCacheEntry& entry = CachedModel(spec, model_seed, sgd_options);
    model = entry.model.get();
    sgd = entry.sgd.get();
  } else {
    fresh_model = nn::BuildModelOrDie(spec, model_seed);
    fresh_sgd = std::make_unique<nn::Sgd>(sgd_options);
    model = fresh_model.get();
    sgd = fresh_sgd.get();
  }
  model->SetWeights(weights);
  if (options.proximal_mu > 0.0) sgd->SetProximalAnchor(weights);

  LocalResult result;
  result.iterations = options.tau;
  double loss_tail_sum = 0.0;
  int64_t loss_tail_count = 0;
  const int64_t tail_start = options.tau - (options.tau + 1) / 2;

  for (int64_t it = 0; it < options.tau; ++it) {
    nn::Tensor batch;
    std::vector<int64_t> labels;
    loader->NextBatch(&batch, &labels);

    double loss = 0.0;
    nn::Tensor grad;
    model->ZeroGrad();
    if (options.is_language_model) {
      nn::Tensor inputs;
      std::vector<int64_t> targets;
      data::SplitLmBatch(batch, &inputs, &targets);
      nn::Tensor logits = model->Forward(inputs, /*training=*/true);
      loss = nn::SoftmaxCrossEntropy(logits, targets, &grad);
    } else {
      nn::Tensor logits = model->Forward(batch, /*training=*/true);
      loss = nn::SoftmaxCrossEntropy(logits, labels, &grad);
    }
    model->Backward(grad);
    sgd->Step(model->Params());

    if (it == 0) result.initial_loss = loss;
    if (it >= tail_start) {
      loss_tail_sum += loss;
      ++loss_tail_count;
    }
  }
  result.final_loss =
      loss_tail_count > 0 ? loss_tail_sum / loss_tail_count : 0.0;
  result.weights = model->GetWeights();
  return result;
}

}  // namespace fedmp::fl
