#include "fl/worker.h"

#include "data/synthetic_text.h"
#include "nn/layers/softmax_xent.h"

namespace fedmp::fl {

Worker::Worker(int id, const data::Dataset* train,
               std::vector<int64_t> shard, edge::DeviceProfile profile,
               uint64_t seed)
    : id_(id),
      train_(train),
      shard_(std::move(shard)),
      profile_(std::move(profile)),
      rng_(seed) {
  FEDMP_CHECK(train != nullptr);
  FEDMP_CHECK(!shard_.empty()) << "worker " << id << " has an empty shard";
  loader_indices_size_ = static_cast<int64_t>(shard_.size());
}

LocalResult Worker::LocalTrain(const nn::ModelSpec& spec,
                               const nn::TensorList& weights,
                               const LocalTrainOptions& options) {
  if (loader_ == nullptr || loader_batch_ != options.batch_size) {
    loader_ = std::make_unique<data::DataLoader>(
        train_, shard_, options.batch_size, /*shuffle=*/true,
        rng_.NextU64());
    loader_batch_ = options.batch_size;
  }

  std::unique_ptr<nn::Model> model =
      nn::BuildModelOrDie(spec, /*seed=*/rng_.NextU64());
  model->SetWeights(weights);

  nn::SgdOptions sgd_options;
  sgd_options.learning_rate = options.learning_rate;
  sgd_options.momentum = options.momentum;
  sgd_options.weight_decay = options.weight_decay;
  sgd_options.proximal_mu = options.proximal_mu;
  sgd_options.clip_norm = options.clip_norm;
  nn::Sgd sgd(sgd_options);
  if (options.proximal_mu > 0.0) sgd.SetProximalAnchor(weights);

  LocalResult result;
  result.iterations = options.tau;
  double loss_tail_sum = 0.0;
  int64_t loss_tail_count = 0;
  const int64_t tail_start = options.tau - (options.tau + 1) / 2;

  for (int64_t it = 0; it < options.tau; ++it) {
    nn::Tensor batch;
    std::vector<int64_t> labels;
    loader_->NextBatch(&batch, &labels);

    double loss = 0.0;
    nn::Tensor grad;
    model->ZeroGrad();
    if (options.is_language_model) {
      nn::Tensor inputs;
      std::vector<int64_t> targets;
      data::SplitLmBatch(batch, &inputs, &targets);
      nn::Tensor logits = model->Forward(inputs, /*training=*/true);
      loss = nn::SoftmaxCrossEntropy(logits, targets, &grad);
    } else {
      nn::Tensor logits = model->Forward(batch, /*training=*/true);
      loss = nn::SoftmaxCrossEntropy(logits, labels, &grad);
    }
    model->Backward(grad);
    sgd.Step(model->Params());

    if (it == 0) result.initial_loss = loss;
    if (it >= tail_start) {
      loss_tail_sum += loss;
      ++loss_tail_count;
    }
  }
  result.final_loss =
      loss_tail_count > 0 ? loss_tail_sum / loss_tail_count : 0.0;
  result.weights = model->GetWeights();
  return result;
}

}  // namespace fedmp::fl
