#include "fl/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "common/math_util.h"
#include "common/mem_info.h"
#include "common/thread_pool.h"
#include "edge/sim_clock.h"
#include "fl/hierarchy.h"
#include "fl/pipeline.h"
#include "fl/resource_accounting.h"
#include "nn/tensor_ops.h"
#include "nn/workspace.h"
#include "obs/analysis/round_health.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampling.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "pruning/prune_cache.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {

namespace {
double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

namespace internal {
// Resolves the effective fault plan for a trainer: the legacy crash_prob
// knob folds into the plan, and an unset plan seed derives from the run
// seed so same-seed runs replay the same failure trace.
edge::FaultPlan ResolveFaultPlan(const TrainerOptions& options,
                                 int num_workers) {
  edge::FaultPlanOptions fo = options.faults;
  fo.crash_prob = std::max(fo.crash_prob, options.crash_prob);
  if (fo.seed == 0) fo.seed = options.seed ^ 0xFA017EEDULL;
  return edge::FaultPlan(num_workers, fo);
}

// Deterministically corrupts an upload in place (what a bit-flipped or
// truncated payload looks like to the PS after deserialization).
void CorruptPayload(nn::TensorList* payload) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (nn::Tensor& t : *payload) {
    if (t.numel() > 0) t.at(0) = nan;
  }
}

#ifndef FEDMP_BUILD_GIT_SHA
#define FEDMP_BUILD_GIT_SHA "unknown"
#endif

void PushRunManifest(const char* engine, const std::string& strategy,
                     const TrainerOptions& options, int num_workers) {
  if (!obs::Enabled()) return;
  obs::SetRunInfo("git_sha", FEDMP_BUILD_GIT_SHA);
  obs::SetRunInfo("engine", engine);
  obs::SetRunInfo("strategy", strategy);
  obs::SetRunInfo("seed", static_cast<int64_t>(options.seed));
  obs::SetRunInfo("num_workers", num_workers);
  obs::SetRunInfo("max_rounds", options.max_rounds);
  obs::SetRunInfo("num_threads", ThreadPool::ResolveThreads(options.num_threads));
  obs::SetRunInfo("faults_active",
                  options.faults.any() || options.crash_prob > 0.0 ? 1 : 0);
  obs::SetRunInfo("toggle_pool", nn::ws::Enabled() ? 1 : 0);
  obs::SetRunInfo("toggle_plan_cache", pruning::PlanCacheEnabled() ? 1 : 0);
  obs::SetRunInfo("toggle_fast_kernels", nn::FastKernelsEnabled() ? 1 : 0);
  obs::SetRunInfo("toggle_model_reuse", ModelReuseEnabled() ? 1 : 0);
  obs::SetRunInfo("toggle_pipeline", PipelineEnabled() ? 1 : 0);
  obs::SetRunInfo("fog_fan_out", options.scale.fog_fan_out);
  obs::SetRunInfo("max_inflight", options.scale.max_inflight);
  obs::SetRunInfo("ps_shards", options.scale.ps_shards);
}
}  // namespace internal

void Trainer::InitBeforeWorkers() {
  FEDMP_CHECK(task_ != nullptr);
  FEDMP_CHECK(!devices_.empty());
  ThreadPool::SetGlobalThreads(
      ThreadPool::ResolveThreads(options_.num_threads));
  obs::MaybeEnableFromEnv();
  // Live tier: bounded flight recorder, deterministic per-worker trace
  // sampling, periodic health snapshots, and the round-boundary watchdog.
  // All off unless their FEDMP_* variables are set.
  obs::MaybeEnableFlightRecorderFromEnv();
  obs::MaybeEnableSamplingFromEnv(options_.seed);
  obs::MaybeEnableSnapshotsFromEnv();
  obs::MaybeEnableWatchdogFromEnv();
  server_ = std::make_unique<ParameterServer>(task_->model,
                                              options_.seed ^ 0x5EEDULL);
  strategy_->Initialize(static_cast<int>(devices_.size()), rng_.NextU64());
}

void Trainer::InitAfterWorkers() {
  fault_plan_ = internal::ResolveFaultPlan(
      options_, static_cast<int>(devices_.size()));
  coverage_ = ParameterCoverage(task_->model);
  internal::PushRunManifest("sync", strategy_->Name(), options_,
                            static_cast<int>(devices_.size()));
}

Trainer::Trainer(const data::FlTask* task,
                 std::vector<edge::DeviceProfile> devices,
                 data::Partition partition,
                 std::unique_ptr<Strategy> strategy,
                 const TrainerOptions& options)
    : task_(task),
      devices_(std::move(devices)),
      strategy_(std::move(strategy)),
      options_(options),
      rng_(options.seed) {
  FEDMP_CHECK_EQ(devices_.size(), partition.size())
      << "one shard per device required";
  InitBeforeWorkers();
  for (size_t n = 0; n < devices_.size(); ++n) {
    workers_.push_back(std::make_unique<Worker>(
        static_cast<int>(n), &task_->train, partition[n], devices_[n],
        rng_.NextU64()));
  }
  InitAfterWorkers();
}

Trainer::Trainer(const data::FlTask* task,
                 std::vector<edge::DeviceProfile> devices,
                 std::shared_ptr<const data::PartitionView> partition,
                 std::unique_ptr<Strategy> strategy,
                 const TrainerOptions& options)
    : task_(task),
      devices_(std::move(devices)),
      strategy_(std::move(strategy)),
      options_(options),
      partition_view_(std::move(partition)),
      rng_(options.seed) {
  FEDMP_CHECK(partition_view_ != nullptr);
  FEDMP_CHECK_EQ(static_cast<int64_t>(devices_.size()),
                 partition_view_->num_workers())
      << "one shard per device required";
  InitBeforeWorkers();
  for (size_t n = 0; n < devices_.size(); ++n) {
    workers_.push_back(std::make_unique<Worker>(
        static_cast<int>(n), &task_->train, partition_view_.get(),
        devices_[n], rng_.NextU64()));
  }
  InitAfterWorkers();
}

RoundLog Trainer::Run() {
  RoundLog log;
  edge::SimClock clock;
  const int num_workers = static_cast<int>(workers_.size());
  const nn::ModelSpec& global_spec = server_->spec();
  // Everything the driver thread emits lands on the PS track; per-worker
  // lanes override this inside the parallel regions below.
  obs::TrackScope ps_scope(obs::PsTrack());
  obs::SetLogicalTime(clock.now());
  // Pipelined execution fuses each worker's prune→train→upload chain into
  // one task and streams aggregation as uploads land (DESIGN.md "Execution
  // pipeline"); the phase-barrier path below is the bit-identical oracle.
  const bool pipelined = PipelineEnabled();

  // Resource ledger: dense-baseline constants once per run; per-worker
  // entries are computed analytically at dispatch (pure functions of the
  // round plan) and folded in driver order, so every total is
  // bit-identical at any thread count (obs/ledger.h).
  const ResourceParams res_params =
      MakeResourceParams(global_spec, server_->weights());
  obs::Ledger ledger;
  const bool ledger_check = LedgerCheckEnabled();
  if (ledger_check) obs::SetMacCountingEnabled(true);

  for (int64_t round = 0; round < options_.max_rounds; ++round) {
    // --- (1) Pruning-ratio decision + distributed model pruning (PS). ---
    const auto decision_start = std::chrono::steady_clock::now();
    std::vector<WorkerRoundPlan> plans(static_cast<size_t>(num_workers));
    {
      OBS_SPAN("plan_round", {{"round", round}});
      strategy_->PlanRound(round, &plans);
    }
    if (force_full_refresh_) {
      // Some prunable unit exceeded the staleness bound: ship the full
      // model to everyone so any single surviving update re-covers every
      // parameter (see TrainerOptions::max_param_staleness).
      for (auto& plan : plans) plan.pruning_ratio = 0.0;
      force_full_refresh_ = false;
    }

    // The l1 importance ranking depends only on this round's global
    // weights, so it is computed once and every worker's mask is derived
    // from it (stable argsort makes the derived masks bit-identical to
    // per-worker ranking).
    pruning::ImportanceRanking ranking;
    bool any_pruned = false;
    for (const auto& plan : plans) any_pruned |= plan.pruning_ratio > 0.0;
    if (any_pruned) {
      OBS_SPAN("rank_units", {{"round", round}});
      ranking = pruning::RankUnits(global_spec, server_->weights());
    }

    std::vector<pruning::SubModel> subs(static_cast<size_t>(num_workers));
    std::vector<obs::WorkerResources> res(static_cast<size_t>(num_workers));
    std::vector<double> comp_times(static_cast<size_t>(num_workers));
    std::vector<double> comm_times(static_cast<size_t>(num_workers));
    std::vector<double> completion_times(static_cast<size_t>(num_workers));
    std::vector<double> delta_losses(static_cast<size_t>(num_workers), 0.0);
    std::vector<double> initial_losses(static_cast<size_t>(num_workers));
    std::vector<double> final_losses(static_cast<size_t>(num_workers));
    std::vector<nn::TensorList> uploads(static_cast<size_t>(num_workers));
    std::vector<edge::WorkerRoundFaults> faults(
        static_cast<size_t>(num_workers));
    // Byte flags, not vector<bool>: adjacent slots are written from
    // different lanes in the pipelined path and vector<bool> bit-packs.
    std::vector<uint8_t> arrives(static_cast<size_t>(num_workers), 1);
    std::vector<uint8_t> payload_finite(static_cast<size_t>(num_workers), 1);

    // Per-worker round stages. Each touches only worker-owned state (its
    // subs/uploads/times slots, its model, shard, and RNG stream) plus
    // read-only globals, so the stages can run per worker on any lane —
    // phase-by-phase below, or fused into one task per worker when
    // pipelined. Within a worker the stage order is fixed (its RNG stream
    // serializes train → cost sampling), so results are bit-identical
    // either way.
    auto prune_one = [&](size_t i) {
      // Sub-model construction is a pure function of (spec, weights,
      // ratio); each lane writes only its own subs[i] slot.
      if (plans[i].pruning_ratio > 0.0) {
        auto sub = pruning::PruneByRatioRanked(
            global_spec, server_->weights(), ranking,
            plans[i].pruning_ratio);
        FEDMP_CHECK(sub.ok()) << sub.status();
        subs[i] = std::move(sub).value();
      } else {
        subs[i].spec = global_spec;
        subs[i].weights = server_->weights();
        subs[i].mask = pruning::FullMask(global_spec);
      }
    };
    auto train_one = [&](size_t i) {
      const int n = static_cast<int>(i);
      LocalTrainOptions local;
      local.tau = plans[i].tau > 0 ? plans[i].tau : task_->local_iterations;
      local.batch_size = task_->batch_size;
      local.learning_rate = task_->learning_rate;
      local.momentum = task_->momentum;
      local.weight_decay = task_->weight_decay;
      local.proximal_mu = plans[i].proximal_mu;
      local.clip_norm = task_->is_language_model ? 5.0 : 0.0;
      local.is_language_model = task_->is_language_model;

      // Per-worker spans respect the deterministic sampling plan (a pure
      // function of seed/round/worker, so every thread agrees without
      // coordination). ScopedSpan is not movable; gate via optional.
      std::optional<obs::ScopedSpan> train_span;
      if (obs::ShouldTraceWorker(round, n, num_workers)) {
        train_span.emplace("worker_train",
                           obs::Args{{"worker", n},
                                     {"round", round},
                                     {"ratio", plans[i].pruning_ratio},
                                     {"tau", local.tau}});
      }
      // Ledger entry BEFORE training: PlannedRows reads the loader cursor
      // LocalTrain is about to advance, and the analytic FLOP/byte counts
      // are pure functions of (sub spec, mask, rows, plan).
      res[i] = ComputeWorkerResources(
          res_params, subs[i].spec, subs[i].mask,
          workers_[i]->PlannedRows(local), plans[i].compress_ratio,
          strategy_->quantize_residuals());

      if (ledger_check) obs::ResetThreadMacCount();
      LocalResult result =
          workers_[i]->LocalTrain(subs[i].spec, subs[i].weights, local);
      if (ledger_check) {
        FEDMP_CHECK_EQ(obs::ThreadMacCount(), res[i].flops())
            << "ledger: analytic MACs diverge from instrumented kernels "
            << "(worker " << n << " round " << round << ")";
      }
      delta_losses[i] = result.initial_loss - result.final_loss;
      initial_losses[i] = result.initial_loss;
      final_losses[i] = result.final_loss;

      uploads[i] = plans[i].compress_ratio > 0.0
                       ? SparsifyUpdate(subs[i].weights, result.weights,
                                        plans[i].compress_ratio)
                       : std::move(result.weights);

      // Simulated completion time (Eq. 5).
      const edge::DeviceRoundSample sample =
          edge::SampleRound(devices_[i], workers_[i]->rng());
      comp_times[i] = edge::CompSeconds(subs[i].spec, local.tau,
                                        local.batch_size, sample,
                                        options_.cost);
      const double param_bytes =
          static_cast<double>(subs[i].spec.NumParams()) *
          options_.cost.bytes_per_param;
      // Compressed uploads carry a ~10% sparse-index overhead on the
      // surviving entries.
      const double up_bytes =
          plans[i].compress_ratio > 0.0
              ? param_bytes * (1.0 - plans[i].compress_ratio) * 1.1
              : param_bytes;
      // Encoded-bytes mode charges what the wire actually carries (pruned
      // sub weights + mask down, compressed payload up) instead of the
      // dense parameter-count approximation. Off by default so simulated
      // timing stays bit-identical to prior releases.
      comm_times[i] =
          edge::CostEncodedEnabled()
              ? edge::CommSeconds(static_cast<double>(res[i].bytes_down),
                                  static_cast<double>(res[i].bytes_up),
                                  sample, options_.cost)
              : edge::CommSeconds(param_bytes, up_bytes, sample,
                                  options_.cost);
      completion_times[i] = comp_times[i] + comm_times[i];
    };
    // Fault draws are pure per (round, worker), so this runs equally well
    // from the serial phase loop or inside a worker's fused task.
    auto fault_one = [&](size_t i) {
      if (!fault_plan_.active()) return;
      faults[i] = fault_plan_.FaultsFor(round, static_cast<int>(i));
      if (!faults[i].Arrives()) {
        // Crashed worker or lost upload: the PS never hears back.
        completion_times[i] = std::numeric_limits<double>::infinity();
        arrives[i] = 0;
        return;
      }
      completion_times[i] =
          completion_times[i] * faults[i].slowdown + faults[i].extra_delay;
      if (faults[i].update_corrupted) {
        internal::CorruptPayload(&uploads[i]);
      }
    };

    // Without a deadline policy the survivor set is exactly the finite
    // arrivals — decidable per worker, so admission (and therefore the
    // aggregation fold) streams too. With a deadline, admission needs every
    // completion time and is decided in the serial tail; the expensive
    // recover+residual work still overlapped with training.
    const bool eager_admit = !options_.deadline.enabled;
    std::unique_ptr<HierarchicalAggregator> agg;
    double decision_ms = 0.0;
    if (pipelined) {
      // In-task pruning means the decision overhead column only covers the
      // PS-side planning + ranking here.
      decision_ms = ElapsedMs(decision_start);
      agg = std::make_unique<HierarchicalAggregator>(
          global_spec, server_->weights(), num_workers,
          strategy_->sync_scheme(), strategy_->quantize_residuals(),
          options_.scale.fog_fan_out, options_.scale.ps_shards);
      // Coverage streams with admission: each admitted worker's mask is
      // folded into the round's union as it retires and then freed —
      // retaining O(fleet) masks until the tail was a ~2 KB/worker RSS
      // floor at 100k workers.
      coverage_.BeginRound();
      // Submission is windowed: at most `window` workers are in flight at
      // once (each holds a sub-model + upload), and each task frees its
      // heavyweight buffers as it retires, so a 10k-worker round never
      // materializes the fleet (TrainerOptions::ScaleOptions). A drained
      // tag admits eagerly when no deadline policy needs the full horizon;
      // the canonical tree makes the result independent of this pacing.
      const int64_t window = options_.scale.max_inflight > 0
                                 ? options_.scale.max_inflight
                                 : static_cast<int64_t>(num_workers);
      TaskSet tasks;
      auto on_drained = [&](int64_t tag) {
        if (!eager_admit) return;
        const size_t i = static_cast<size_t>(tag);
        if (arrives[i] != 0 && payload_finite[i] != 0) {
          agg->Admit(static_cast<int>(tag));
          coverage_.AccumulateMask(subs[i].mask);
        } else {
          agg->Reject(static_cast<int>(tag));
        }
        // Admission and coverage were the mask's last readers.
        subs[i].mask = pruning::PruneMask();
      };
      for (int n = 0; n < num_workers; ++n) {
        while (tasks.pending() >= window) {
          int64_t tag = -1;
          FEDMP_CHECK(tasks.DrainNext(&tag));
          on_drained(tag);
        }
        tasks.Submit(n, [&, n] {
          const size_t i = static_cast<size_t>(n);
          // The task's spans belong to the worker it simulates. Library
          // spans emitted inside the task (the pruner's) follow the
          // sampling plan via the lane mute, like worker_train does.
          obs::TrackScope lane(obs::WorkerTrack(n));
          obs::TraceMuteScope mute(
              !obs::ShouldTraceWorker(round, n, num_workers));
          prune_one(i);
          train_one(i);
          fault_one(i);
          // Whatever the outcome, the aggregator owns any data it still
          // needs (the leaf contribution) once the task retires, so the
          // per-worker model-sized buffers free here — in-flight workers,
          // not the fleet, bound peak RSS. The mask outlives the task only
          // until its drain callback (admission + coverage fold) on the
          // driver thread; under a deadline policy it survives to the
          // serial tail, where admission is first decidable.
          if (!arrives[i]) {
            agg->MarkUnavailable(n);
            uploads[i] = nn::TensorList();
            subs[i].weights = nn::TensorList();
            subs[i].spec = nn::ModelSpec();
            return;
          }
          // The finite-ness screen the PS applies serially in the barrier
          // path is a pure scan, so it runs here; only the accept/reject
          // counters land on the driver thread.
          payload_finite[i] = nn::AllFiniteList(uploads[i]) ? 1 : 0;
          if (!payload_finite[i]) {
            agg->MarkUnavailable(n);
            uploads[i] = nn::TensorList();
            subs[i].weights = nn::TensorList();
            subs[i].spec = nn::ModelSpec();
            return;
          }
          agg->Accumulate(n, uploads[i], subs[i].mask);
          // Fresh-object assignment, not clear(): clear() keeps the
          // tensor-struct capacity (~300 B per list) alive per retired
          // worker — an O(fleet) floor the windowed round exists to avoid.
          uploads[i] = nn::TensorList();
          subs[i].weights = nn::TensorList();
          subs[i].spec = nn::ModelSpec();
        });
      }
      int64_t tag = -1;
      while (tasks.DrainNext(&tag)) on_drained(tag);
    } else {
      ParallelFor(0, num_workers, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t n = lo; n < hi; ++n) {
          // The pruner's spans belong to the worker the sub-model is for
          // and respect the sampling plan via the lane mute.
          obs::TrackScope lane(obs::WorkerTrack(static_cast<int>(n)));
          obs::TraceMuteScope mute(!obs::ShouldTraceWorker(
              round, static_cast<int>(n), num_workers));
          prune_one(static_cast<size_t>(n));
        }
      });
      decision_ms = ElapsedMs(decision_start);

      // --- (2) Local training (real SGD) + per-worker cost accounting. ---
      // The loss sums are reduced serially afterwards in worker order, so
      // the aggregate — like the global model — is bit-identical to the
      // serial engine at any thread count.
      ParallelFor(0, num_workers, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t n = lo; n < hi; ++n) {
          obs::TrackScope lane(obs::WorkerTrack(static_cast<int>(n)));
          obs::TraceMuteScope mute(!obs::ShouldTraceWorker(
              round, static_cast<int>(n), num_workers));
          train_one(static_cast<size_t>(n));
        }
      });

      // --- (3) Fault injection. ---
      for (int n = 0; n < num_workers; ++n) {
        fault_one(static_cast<size_t>(n));
      }
    }
    double initial_loss_sum = 0.0, final_loss_sum = 0.0;
    for (int n = 0; n < num_workers; ++n) {
      initial_loss_sum += initial_losses[static_cast<size_t>(n)];
      final_loss_sum += final_losses[static_cast<size_t>(n)];
    }

    // --- Deadline policy over the simulated completion times. ---
    const edge::DeadlineOutcome outcome =
        edge::ApplyDeadline(completion_times, options_.deadline);
    obs::InstantEvent(
        "deadline",
        {{"round", round},
         {"survivors", static_cast<int>(outcome.survivors.size())},
         {"round_time", outcome.round_time}});

    // --- Round-health attribution over the simulated timings. ---
    // The worker_timing events feed the post-hoc analyzer; the in-process
    // summary lands in the RoundRecord. Both use simulated time only, and
    // the events are emitted from this serial loop, so the analyzer output
    // is bit-identical at any thread count.
    std::vector<obs::analysis::WorkerTiming> timings(
        static_cast<size_t>(num_workers));
    for (int n = 0; n < num_workers; ++n) {
      const size_t i = static_cast<size_t>(n);
      obs::analysis::WorkerTiming& t = timings[i];
      t.worker = n;
      t.comp_s = comp_times[i];
      t.comm_s = comm_times[i];
      t.completion_s =
          std::isfinite(completion_times[i]) ? completion_times[i] : -1.0;
      t.ratio = plans[i].pruning_ratio;
      // Region attribution (critical-path by fog tier); flat rounds keep -1.
      t.fog = agg != nullptr ? agg->fog_of(n) : -1;
    }
    for (int n : outcome.survivors) {
      timings[static_cast<size_t>(n)].survived = true;
    }
    // Summarize BEFORE emitting: under trace sampling the emission set is
    // the sampled workers plus the critical worker and the max-gap
    // straggler, which only the summary identifies.
    const obs::analysis::RoundHealth health =
        obs::analysis::SummarizeRound(round, std::move(timings));
    const bool sampling = obs::TraceSamplingActive();
    const int straggler = obs::analysis::StragglerArgmax(health);
    for (const obs::analysis::WorkerTiming& t : health.workers) {
      if (sampling && t.worker != health.critical_worker &&
          t.worker != straggler &&
          !obs::ShouldTraceWorker(round, t.worker, num_workers)) {
        // Sampled out: fold into the per-round rollup histogram instead of
        // emitting a per-worker event.
        if (obs::Enabled() && t.survived && t.completion_s >= 0.0) {
          static obs::Histogram* completion_hist = obs::GetHistogram(
              "fl.round.completion_s",
              {0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256});
          completion_hist->Observe(t.completion_s);
        }
        continue;
      }
      obs::InstantEvent("worker_timing", obs::WorkerTrack(t.worker),
                        {{"worker", t.worker},
                         {"round", round},
                         {"comp_s", t.comp_s},
                         {"comm_s", t.comm_s},
                         {"completion_s", t.completion_s},
                         {"ratio", t.ratio},
                         {"survived", t.survived ? 1 : 0},
                         {"fog", t.fog}});
    }
    if (sampling) {
      // Exact aggregates for the analyzer: overrides what it would recompute
      // from the thinned per-worker stream (see HealthFromEvents).
      obs::InstantEvent("round_rollup", obs::PsTrack(),
                        {{"round", round},
                         {"workers", num_workers},
                         {"survivors", health.survivors},
                         {"mean_completion_s", health.mean_completion_s},
                         {"median_completion_s", health.median_completion_s},
                         {"straggler_gap_max", health.straggler_gap_max}});
    }

    // --- (4) Screening + aggregation over accepted survivors. ---
    std::vector<const pruning::PruneMask*> accepted_masks;
    std::vector<bool> participated(static_cast<size_t>(num_workers), false);
    int64_t rejected = 0, duplicates = 0, participants = 0;
    if (pipelined) {
      // Slot-indexed admission: which slot a worker occupies — not when it
      // was decided — determines where its contribution sits in the
      // canonical reduction tree, so this loop's order is bookkeeping only;
      // the aggregator reproduces AggregateSubModels bit-for-bit.
      std::vector<uint8_t> survived(static_cast<size_t>(num_workers), 0);
      for (int n : outcome.survivors) {
        survived[static_cast<size_t>(n)] = 1;
      }
      for (int n = 0; n < num_workers; ++n) {
        const size_t i = static_cast<size_t>(n);
        if (survived[i] == 0) {
          if (!eager_admit) agg->Reject(n);
          continue;
        }
        if (payload_finite[i] == 0) {
          ++rejected;  // corrupt payload refused by the PS
          server_->NoteCorruptRejected();
          if (!eager_admit) agg->Reject(n);
          continue;
        }
        if (fault_plan_.active() && faults[i].update_duplicated) {
          // The channel delivered this update twice; the PS keeps one copy
          // so the worker is not double-weighted in the average.
          server_->NoteDuplicateDropped();
          ++duplicates;
        }
        participated[i] = true;
        // Eager admission already folded this worker's mask (and freed it)
        // at drain time; the deadline path still holds every mask here.
        if (!eager_admit) coverage_.AccumulateMask(subs[i].mask);
        ++participants;
        if (!eager_admit) agg->Admit(n);
      }
      if (participants > 0) {
        OBS_SPAN("aggregate",
                 {{"round", round},
                  {"updates", static_cast<int>(participants)}});
        StreamingAggregator::Result result = agg->Finish();
        server_->ApplyAggregate(std::move(result.sum), result.participants);
      }
    } else {
      // Slot-aligned updates with holes: the vector spans every worker slot
      // and non-participants stay holes, so AggregateSubModels associates
      // additions over the same slot tree the streamed and fog tiers use —
      // crash/rejection patterns cannot skew the fold (see SubModelUpdate).
      std::vector<SubModelUpdate> updates(static_cast<size_t>(num_workers));
      for (int n : outcome.survivors) {
        const size_t i = static_cast<size_t>(n);
        if (!server_->AcceptPayload(uploads[i])) {
          ++rejected;  // corrupt payload refused by the PS
          continue;
        }
        if (fault_plan_.active() && faults[i].update_duplicated) {
          // The channel delivered this update twice; the PS keeps one copy
          // so the worker is not double-weighted in the average.
          server_->NoteDuplicateDropped();
          ++duplicates;
        }
        participated[i] = true;
        updates[i] = SubModelUpdate{&subs[i].mask, &uploads[i]};
        accepted_masks.push_back(&subs[i].mask);
        ++participants;
      }
      if (participants > 0) {
        OBS_SPAN("aggregate",
                 {{"round", round},
                  {"updates", static_cast<int>(participants)}});
        auto aggregated =
            AggregateSubModels(global_spec, server_->weights(), updates,
                               strategy_->sync_scheme(),
                               strategy_->quantize_residuals());
        FEDMP_CHECK(aggregated.ok()) << aggregated.status();
        server_->SetWeights(std::move(aggregated).value());
      }
    }
    // If no updates were accepted — every worker crashed or every payload
    // was refused — keep the previous global model and let the round
    // degrade gracefully.

    if (pipelined) {
      coverage_.CommitRound();
    } else {
      coverage_.ObserveRound(accepted_masks);
    }
    const int64_t staleness = coverage_.max_staleness();
    if (options_.max_param_staleness > 0 &&
        staleness >= options_.max_param_staleness) {
      force_full_refresh_ = true;
    }

    clock.Advance(outcome.round_time);
    obs::SetLogicalTime(clock.now());

    // --- Resource-ledger rollup (serial, driver thread, fog order). ---
    // Dispatch (download + local compute) is charged for every worker; the
    // upload only when the payload reached the PS, and the residual model
    // only for admitted (aggregated) workers. Each adjustment also shrinks
    // the dense baseline the same way, so savings ratios compare like with
    // like.
    ledger.BeginRound(round, agg != nullptr ? agg->num_fogs() : 0);
    for (int n = 0; n < num_workers; ++n) {
      const size_t i = static_cast<size_t>(n);
      obs::WorkerResources w = res[i];
      if (arrives[i] == 0) {
        w.bytes_up = 0;
        w.dense_bytes -= res_params.dense_params * 4;
      }
      if (!participated[i]) w.bytes_residual = 0;
      ledger.Add(w, agg != nullptr ? agg->fog_of(n) : -1);
    }
    const obs::RoundResources round_res = ledger.Commit();

    // --- Feedback to the strategy. ---
    RoundObservation observation;
    observation.completion_times = completion_times;
    observation.comp_times = comp_times;
    observation.comm_times = comm_times;
    observation.delta_losses = delta_losses;
    observation.participated = participated;
    observation.round_time = outcome.round_time;
    observation.global_delta_loss =
        (initial_loss_sum - final_loss_sum) /
        static_cast<double>(num_workers);
    strategy_->ObserveRound(round, observation);

    // --- Logging + evaluation + stop conditions. ---
    RoundRecord record;
    record.round = round;
    record.sim_time = clock.now();
    record.round_seconds = outcome.round_time;
    record.train_loss = final_loss_sum / static_cast<double>(num_workers);
    double ratio_sum = 0.0;
    for (const auto& plan : plans) ratio_sum += plan.pruning_ratio;
    record.mean_ratio = ratio_sum / static_cast<double>(num_workers);
    record.decision_overhead_ms = decision_ms;
    record.participants = participants;
    record.rejected_updates = rejected;
    record.duplicate_updates = duplicates;
    record.max_param_staleness = staleness;
    if (obs::Enabled()) {
      // Round-granular high-water mark: the bounded-memory scale tests and
      // the BENCH_scale gate read this to assert peak RSS stays
      // O(in-flight window x model) rather than O(fleet x model).
      static obs::Gauge* peak_rss = obs::GetGauge("fl.scale.peak_rss_bytes");
      peak_rss->Set(static_cast<double>(PeakRssBytes()));
    }
    record.critical_worker = health.critical_worker;
    record.critical_comp_s = health.critical_comp_s;
    record.critical_comm_s = health.critical_comm_s;
    record.straggler_gap_max = health.straggler_gap_max;
    record.flops_total = round_res.total.flops();
    record.bytes_up = round_res.total.bytes_up;
    record.bytes_down = round_res.total.bytes_down;
    record.bytes_saved_ratio = round_res.BytesSavedRatio();

    bool stop = round + 1 >= options_.max_rounds ||
                clock.now() >= options_.time_budget_seconds;
    const bool evaluate =
        (round % options_.eval_every == 0) || stop;
    if (evaluate) {
      OBS_SPAN("evaluate", {{"round", round}});
      const ParameterServer::EvalResult eval = server_->Evaluate(
          task_->test, options_.eval_batch_size, task_->is_language_model,
          options_.eval_max_batches);
      record.test_accuracy = eval.accuracy;
      record.test_loss = eval.loss;
      if (task_->is_language_model) record.test_perplexity = eval.perplexity;
      if (options_.stop_at_accuracy > 0.0 &&
          eval.accuracy >= options_.stop_at_accuracy) {
        stop = true;
      }
      if (options_.stop_at_perplexity > 0.0 && task_->is_language_model &&
          eval.perplexity <= options_.stop_at_perplexity) {
        stop = true;
      }
      if (options_.verbose) {
        FEDMP_LOG(Info) << strategy_->Name() << " round " << round
                        << " t=" << record.sim_time
                        << " acc=" << eval.accuracy
                        << " loss=" << eval.loss
                        << " ratio=" << record.mean_ratio;
      }
    }
    obs::InstantEvent("round",
                      {{"round", record.round},
                       {"sim_time", record.sim_time},
                       {"round_seconds", record.round_seconds},
                       {"train_loss", record.train_loss},
                       {"mean_ratio", record.mean_ratio},
                       {"participants", record.participants},
                       {"rejected", record.rejected_updates},
                       {"duplicates", record.duplicate_updates},
                       {"staleness", record.max_param_staleness}});

    // --- Round-boundary watchdog + periodic health snapshot. ---
    if (obs::WatchdogActive()) {
      obs::WatchdogSignals signals;
      signals.round = round;
      signals.straggler_gap_max = health.straggler_gap_max;
      signals.median_completion_s = health.median_completion_s;
      signals.survivors = health.survivors;
      if (agg != nullptr) signals.fog_participants = agg->fog_admitted();
      signals.evaluated = evaluate;
      signals.accuracy = record.test_accuracy;
      signals.round_wire_bytes = round_res.total.wire_bytes();
      signals.round_flops = round_res.total.flops();
      signals.peak_rss_bytes = PeakRssBytes();
      signals.model_cache_hit_rate = obs::Registry::Get().GaugeValue(
          "fl.worker.model_cache.hit_rate", -1.0);
      obs::WatchdogObserveRound(signals);
    }
    if (obs::HealthSnapshotDue(round)) obs::WriteHealthSnapshot(round);

    log.Add(record);
    if (stop) break;
  }
  obs::Flush();
  return log;
}

RoundLog RunFederated(const data::FlTask& task,
                      const std::vector<edge::DeviceProfile>& devices,
                      std::unique_ptr<Strategy> strategy,
                      const TrainerOptions& options) {
  Rng rng(options.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(devices.size()), rng);
  Trainer trainer(&task, devices, std::move(partition), std::move(strategy),
                  options);
  return trainer.Run();
}

}  // namespace fedmp::fl
