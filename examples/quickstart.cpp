// Quickstart: train the paper's CNN task with FedMP on 10 heterogeneous
// simulated edge workers and compare against Syn-FL (FedAvg).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Set FEDMP_TRACE=trace.json (and/or FEDMP_TRACE_JSONL=events.jsonl) to
// additionally record a Perfetto-loadable trace of the run — no rebuild
// needed; see DESIGN.md "Observability".

#include <cstdio>

#include "core/fedmp.h"

int main() {
  fedmp::ExperimentConfig config;
  config.task = "cnn";             // synthetic MNIST stand-in
  config.method = "fedmp";         // adaptive pruning + E-UCB + R2SP
  config.heterogeneity = fedmp::edge::HeterogeneityLevel::kMedium;
  config.trainer.max_rounds = 40;
  config.trainer.eval_every = 4;
  config.trainer.verbose = true;

  std::printf("== FedMP ==\n");
  auto fedmp_log = fedmp::RunExperiment(config);
  if (!fedmp_log.ok()) {
    std::fprintf(stderr, "FedMP run failed: %s\n",
                 fedmp_log.status().ToString().c_str());
    return 1;
  }

  config.method = "syn_fl";
  std::printf("== Syn-FL ==\n");
  auto synfl_log = fedmp::RunExperiment(config);
  if (!synfl_log.ok()) {
    std::fprintf(stderr, "Syn-FL run failed: %s\n",
                 synfl_log.status().ToString().c_str());
    return 1;
  }

  std::printf("\nmethod   final-acc  sim-time-to-85%%\n");
  std::printf("FedMP    %.4f     %.1fs\n", fedmp_log->FinalAccuracy(),
              fedmp_log->TimeToAccuracy(0.85));
  std::printf("Syn-FL   %.4f     %.1fs\n", synfl_log->FinalAccuracy(),
              synfl_log->TimeToAccuracy(0.85));

  // Per-round metrics in both formats (same columns; see fl/round_log.h).
  if (fedmp_log->ToTable().WriteCsvFile("quickstart_rounds.csv").ok() &&
      fedmp_log->WriteJsonlFile("quickstart_rounds.jsonl").ok()) {
    std::printf("round log -> quickstart_rounds.csv / .jsonl\n");
  }
  return 0;
}
