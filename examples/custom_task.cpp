// Bring-your-own task: the paper's §VI extension point. Defines a custom
// dataset (synthetic 2-channel textures), a custom CNN architecture via
// ModelSpec, non-IID shards, and trains it with FedMP — no changes to the
// library, just the public API.

#include <cstdio>

#include "core/fedmp.h"

int main() {
  using namespace fedmp;
  using nn::LayerSpec;

  // 1. A custom dataset through the synthetic generator (swap in your own
  //    data::Dataset loader here for real data).
  data::SyntheticImageConfig data_config;
  data_config.channels = 2;
  data_config.height = data_config.width = 12;
  data_config.num_classes = 6;
  data_config.train_per_class = 60;
  data_config.test_per_class = 20;
  data_config.noise_stddev = 0.4;
  data_config.seed = 99;
  data::TrainTestSplit split = data::GenerateSyntheticImages(data_config);

  // 2. A custom architecture. Any Conv/BN/ReLU/Pool/Residual/Dense chain
  //    (and Embed/LSTM for sequence tasks) is prunable out of the box.
  nn::ModelSpec model;
  model.name = "custom-texture-net";
  model.input.kind = nn::ShapeKind::kImage;
  model.input.c = 2;
  model.input.h = model.input.w = 12;
  model.num_classes = 6;
  model.layers = {
      LayerSpec::Conv(2, 12, 3, 1, 1),   LayerSpec::BatchNorm(12),
      LayerSpec::Relu(),                 LayerSpec::MaxPool(2, 2),
      LayerSpec::Residual(12, 8),        LayerSpec::MaxPool(2, 2),
      LayerSpec::Conv(12, 24, 3, 1, 1),  LayerSpec::Relu(),
      LayerSpec::GlobalPool(),           LayerSpec::Dense(24, 6),
  };
  std::printf("custom model: %lld params, %lld FLOPs/sample\n",
              (long long)model.NumParams(),
              (long long)model.ForwardFlopsPerSample());

  // 3. Bundle it as an FlTask with training hyper-parameters.
  data::FlTask task;
  task.name = "custom";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = model;
  task.learning_rate = 0.05;
  task.batch_size = 16;
  task.local_iterations = 3;

  // 4. Run FedMP on a heterogeneous fleet with label-skewed shards.
  ExperimentConfig config;
  config.partition = "skew:40";
  config.heterogeneity = edge::HeterogeneityLevel::kMedium;
  config.trainer.max_rounds = 40;
  config.trainer.eval_every = 4;
  config.trainer.verbose = true;

  config.method = "fedmp";
  auto fedmp_log = RunExperimentOnTask(config, task);
  FEDMP_CHECK(fedmp_log.ok()) << fedmp_log.status();
  config.method = "syn_fl";
  auto synfl_log = RunExperimentOnTask(config, task);
  FEDMP_CHECK(synfl_log.ok()) << synfl_log.status();

  std::printf("\ncustom task, skew:40, medium heterogeneity:\n");
  std::printf("  FedMP : final %.4f in %.0f simulated s\n",
              fedmp_log->FinalAccuracy(), fedmp_log->TotalSimTime());
  std::printf("  Syn-FL: final %.4f in %.0f simulated s\n",
              synfl_log->FinalAccuracy(), synfl_log->TotalSimTime());
  return 0;
}
