// Traced chaos rounds: runs FedMP through both engines with fault injection
// while the telemetry subsystem records everything, then writes the full
// set of observability artifacts:
//
//   sync_trace.json / async_trace.json    Chrome trace-event JSON — open in
//                                         https://ui.perfetto.dev (one track
//                                         per worker, the PS, and each
//                                         thread-pool lane)
//   sync_events.jsonl / async_events.jsonl deterministic logical event log
//   sync_rounds.csv|jsonl / async_rounds.* per-round metrics, both formats
//   sync_metrics.json / async_metrics.json merged counter/histogram snapshot
//   sync_manifest.json / async_manifest.json run manifest (build sha, seed,
//                                         thread count, toggle states)
//
// The artifact set is exactly what tools/fedmp_report consumes:
//   ./build/tools/fedmp_report --prefix sync
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/traced_chaos

#include <cstdio>
#include <cstdlib>

#include "core/fedmp.h"
#include "obs/trace.h"

namespace {

fedmp::ExperimentConfig ChaosConfig() {
  fedmp::ExperimentConfig config;
  config.task = "cnn";
  config.method = "fedmp";
  config.scale = fedmp::data::TaskScale::kTiny;
  config.heterogeneity = fedmp::edge::HeterogeneityLevel::kHigh;
  config.trainer.max_rounds = 6;
  // Round-count override for harness scenarios — CI's flight-recorder test
  // starts a long run and SIGTERMs it mid-round to validate the dump path.
  if (const char* rounds = std::getenv("FEDMP_CHAOS_ROUNDS")) {
    const long long n = std::atoll(rounds);
    if (n > 0) config.trainer.max_rounds = n;
  }
  config.trainer.eval_every = 2;
  config.trainer.seed = 17;
  // Force a real pool even on single-core CI runners so the trace shows
  // the pool-lane tracks (FEDMP_THREADS still overrides).
  config.trainer.num_threads = 4;
  // A hostile-but-survivable fault plan: crashes, stragglers, corrupt and
  // duplicated uploads all active (see edge/fault.h).
  config.trainer.faults.crash_prob = 0.1;
  config.trainer.faults.straggle_prob = 0.2;
  config.trainer.faults.straggle_factor = 3.0;
  config.trainer.faults.corrupt_prob = 0.1;
  config.trainer.faults.channel.loss_prob = 0.05;
  config.trainer.faults.channel.duplicate_prob = 0.1;
  return config;
}

int RunTraced(const char* label, bool async_mode) {
  const std::string prefix = label;
  fedmp::obs::TraceOptions trace;
  trace.chrome_trace_path = prefix + "_trace.json";
  trace.events_jsonl_path = prefix + "_events.jsonl";
  trace.metrics_json_path = prefix + "_metrics.json";
  trace.manifest_path = prefix + "_manifest.json";
  fedmp::obs::ResetForTest();
  fedmp::obs::Enable(trace);

  fedmp::ExperimentConfig config = ChaosConfig();
  config.async_mode = async_mode;
  if (async_mode) config.async_m = 4;

  auto log = fedmp::RunExperiment(config);  // Flush() runs inside
  fedmp::obs::Disable();
  if (!log.ok()) {
    std::fprintf(stderr, "%s chaos run failed: %s\n", label,
                 log.status().ToString().c_str());
    return 1;
  }
  const auto csv = log->ToTable().WriteCsvFile(prefix + "_rounds.csv");
  const auto jsonl = log->WriteJsonlFile(prefix + "_rounds.jsonl");
  if (!csv.ok() || !jsonl.ok()) {
    std::fprintf(stderr, "%s round-log write failed\n", label);
    return 1;
  }
  std::printf("%s: %zu rounds, final acc %.4f -> %s_trace.json, "
              "%s_events.jsonl, %s_rounds.{csv,jsonl}, %s_metrics.json\n",
              label, log->records().size(), log->FinalAccuracy(), label,
              label, label, label);
  return 0;
}

}  // namespace

int main() {
  if (RunTraced("sync", /*async_mode=*/false) != 0) return 1;
  if (RunTraced("async", /*async_mode=*/true) != 0) return 1;
  std::printf("load the *_trace.json files in https://ui.perfetto.dev\n");
  return 0;
}
