// Asynchronous FedMP (paper Algorithm 2 / Fig. 12): the PS folds in the
// first m arrivals per round instead of waiting for everyone. Compares
// Asyn-FedMP against plain Asyn-FL on the same fleet.

#include <cstdio>

#include "core/fedmp.h"

int main() {
  using namespace fedmp;

  auto run = [](const char* method) {
    ExperimentConfig config;
    config.task = "cnn";
    config.method = method;
    config.async_mode = true;
    config.async_m = 5;  // aggregate the first 5 of 10 arrivals
    config.heterogeneity = edge::HeterogeneityLevel::kHigh;
    config.trainer.max_rounds = 80;
    config.trainer.eval_every = 4;
    auto log = RunExperiment(config);
    FEDMP_CHECK(log.ok()) << log.status();
    return *std::move(log);
  };

  const fl::RoundLog asyn_fl = run("syn_fl");    // Asyn-FL [43]
  const fl::RoundLog asyn_fedmp = run("fedmp");  // Asyn-FedMP

  std::printf("asynchronous setting, m=5, High heterogeneity:\n");
  std::printf("  %-12s t(80%%)=%8.1fs  final=%.4f\n", "Asyn-FL",
              asyn_fl.TimeToAccuracy(0.80), asyn_fl.FinalAccuracy());
  std::printf("  %-12s t(80%%)=%8.1fs  final=%.4f\n", "Asyn-FedMP",
              asyn_fedmp.TimeToAccuracy(0.80), asyn_fedmp.FinalAccuracy());

  // Per-aggregation wall time: async rounds are short because the PS never
  // waits for stragglers.
  const double fl_round =
      asyn_fl.TotalSimTime() / asyn_fl.records().size();
  const double mp_round =
      asyn_fedmp.TotalSimTime() / asyn_fedmp.records().size();
  std::printf("  mean aggregation interval: Asyn-FL %.2fs, "
              "Asyn-FedMP %.2fs\n", fl_round, mp_round);

  if (asyn_fedmp.ToTable().WriteCsvFile("async_rounds.csv").ok() &&
      asyn_fedmp.WriteJsonlFile("async_rounds.jsonl").ok()) {
    std::printf("  round log -> async_rounds.csv / .jsonl\n");
  }
  return 0;
}
