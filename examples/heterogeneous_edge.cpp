// Heterogeneous-edge scenario (paper §V-E): hand-build a fleet from the
// Fig. 3 clusters, train AlexNet/CIFAR-10 stand-ins with FedMP, and inspect
// the per-worker pruning ratios E-UCB learned — fast cluster-A devices
// should keep most of the model, slow cluster-C devices should prune hard.

#include <cstdio>

#include "core/fedmp.h"
#include "fl/strategies/fedmp_strategy.h"

int main() {
  using namespace fedmp;

  // 3 x A + 3 x B + 4 x C = the paper's "High" heterogeneity scenario.
  std::vector<edge::DeviceProfile> fleet;
  for (auto [cluster, count] :
       {std::pair{edge::ClusterId::kA, 3}, {edge::ClusterId::kB, 3},
        {edge::ClusterId::kC, 4}}) {
    auto devices = edge::MakeCluster(cluster, count, /*seed=*/42);
    fleet.insert(fleet.end(), devices.begin(), devices.end());
  }
  std::printf("fleet:\n");
  for (const auto& d : fleet) {
    std::printf("  %-16s %5.1f MFLOP/s  up %6.1f KB/s\n", d.name.c_str(),
                d.flops_per_sec / 1e6, d.uplink_bytes_per_sec / 1e3);
  }

  const data::FlTask task =
      data::MakeAlexNetCifarTask(data::TaskScale::kBench, 42);
  Rng rng(7);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);

  auto strategy = std::make_unique<fl::FedMpStrategy>();
  fl::FedMpStrategy* fedmp_strategy = strategy.get();

  fl::TrainerOptions options;
  options.max_rounds = 50;
  options.eval_every = 5;
  options.verbose = true;
  fl::Trainer trainer(&task, fleet, std::move(partition),
                      std::move(strategy), options);
  const fl::RoundLog log = trainer.Run();

  std::printf("\nlearned pruning behaviour (best discounted-mean leaf):\n");
  for (size_t n = 0; n < fleet.size(); ++n) {
    const bandit::EucbAgent& agent =
        fedmp_strategy->agent(static_cast<int>(n));
    double best_mean = -1e18;
    bandit::Interval best_leaf{0, 0};
    for (size_t j = 0; j < agent.tree().num_leaves(); ++j) {
      if (agent.DiscountedCount(j) < 0.5) continue;
      if (agent.DiscountedMean(j) > best_mean) {
        best_mean = agent.DiscountedMean(j);
        best_leaf = agent.tree().leaves()[j];
      }
    }
    std::printf("  %-16s prefers ratios in [%.2f, %.2f)\n",
                fleet[n].name.c_str(), best_leaf.lo, best_leaf.hi);
  }
  std::printf("\nfinal accuracy %.4f after %.0f simulated seconds\n",
              log.FinalAccuracy(), log.TotalSimTime());
  return 0;
}
