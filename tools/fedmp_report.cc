// fedmp_report: folds a traced run's artifacts into one report.
//
// Usage:
//   fedmp_report --events sync_events.jsonl [--manifest sync_manifest.json]
//                [--metrics sync_metrics.json] [--rounds sync_rounds.jsonl]
//                [--trace sync_trace.json] [--out report.txt]
//                [--json report.json] [--deterministic-only]
//   fedmp_report --diff a.json b.json [--out diff.txt] [--json diff.json]
//
// With a common artifact prefix (what examples/traced_chaos writes), the
// shorthand `fedmp_report --prefix sync` expands to the file names above.
// The human-readable report goes to stdout (or --out); --json additionally
// writes the machine-readable document run_benches.sh --gate consumes.
// --deterministic-only restricts both outputs to the logical-time sections
// (round health / critical path, E-UCB audit), which are byte-identical
// across thread counts for a fixed seed.
// --diff compares two --json report documents (round time, accuracy, cache
// hit rates, alert counts) with a stable ordering.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/analysis/report.h"
#include "obs/analysis/report_diff.h"

namespace {

std::string ReadFileOrEmpty(const std::string& path, bool* missing) {
  if (path.empty()) return "";
  std::ifstream in(path);
  if (!in) {
    *missing = true;
    std::fprintf(stderr, "fedmp_report: cannot read %s\n", path.c_str());
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--prefix P | --events F] [--manifest F] [--metrics F]\n"
      "          [--rounds F] [--trace F] [--out F] [--json F]\n"
      "          [--deterministic-only]\n"
      "       %s --diff a.json b.json [--out F] [--json F]\n",
      argv0, argv0);
  return 2;
}

// Writes `content` to `path`, or stdout when the path is empty. Returns
// false (with a message) when the file can't be opened.
bool WriteOutput(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fedmp_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string events_path, manifest_path, metrics_path, rounds_path;
  std::string trace_path, out_path, json_path;
  std::string diff_a_path, diff_b_path;
  fedmp::obs::analysis::ReportOptions options;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    if (arg == "--deterministic-only") {
      options.deterministic_only = true;
    } else if (arg == "--diff") {
      const char* pa = next();
      const char* pb = next();
      if (pa == nullptr || pb == nullptr) return Usage(argv[0]);
      diff_a_path = pa;
      diff_b_path = pb;
    } else if (arg == "--prefix") {
      const char* prefix = next();
      if (prefix == nullptr) return Usage(argv[0]);
      events_path = std::string(prefix) + "_events.jsonl";
      manifest_path = std::string(prefix) + "_manifest.json";
      metrics_path = std::string(prefix) + "_metrics.json";
      rounds_path = std::string(prefix) + "_rounds.jsonl";
      trace_path = std::string(prefix) + "_trace.json";
    } else if (arg == "--events") {
      if (const char* v = next()) events_path = v; else return Usage(argv[0]);
    } else if (arg == "--manifest") {
      if (const char* v = next()) manifest_path = v; else return Usage(argv[0]);
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v; else return Usage(argv[0]);
    } else if (arg == "--rounds") {
      if (const char* v = next()) rounds_path = v; else return Usage(argv[0]);
    } else if (arg == "--trace") {
      if (const char* v = next()) trace_path = v; else return Usage(argv[0]);
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v; else return Usage(argv[0]);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v; else return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "fedmp_report: unknown argument %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (!diff_a_path.empty()) {
    bool missing = false;
    const std::string a_json = ReadFileOrEmpty(diff_a_path, &missing);
    const std::string b_json = ReadFileOrEmpty(diff_b_path, &missing);
    if (missing) return 1;
    const fedmp::obs::analysis::ReportDiff diff =
        fedmp::obs::analysis::DiffReports(a_json, b_json);
    for (const std::string& warning : diff.warnings) {
      std::fprintf(stderr, "fedmp_report: warning: %s\n", warning.c_str());
    }
    if (diff.human.empty()) {
      std::fprintf(stderr, "fedmp_report: --diff inputs did not parse\n");
      return 1;
    }
    if (!WriteOutput(out_path, diff.human)) return 1;
    if (!json_path.empty() && !WriteOutput(json_path, diff.json + "\n")) {
      return 1;
    }
    return 0;
  }
  if (events_path.empty()) {
    std::fprintf(stderr, "fedmp_report: --events (or --prefix) is required\n");
    return Usage(argv[0]);
  }

  fedmp::obs::analysis::ReportInputs inputs;
  bool events_missing = false;
  bool optional_missing = false;  // informational only
  inputs.events_jsonl = ReadFileOrEmpty(events_path, &events_missing);
  if (events_missing) return 1;
  inputs.manifest_json = ReadFileOrEmpty(manifest_path, &optional_missing);
  inputs.metrics_json = ReadFileOrEmpty(metrics_path, &optional_missing);
  inputs.rounds_jsonl = ReadFileOrEmpty(rounds_path, &optional_missing);
  inputs.chrome_trace_json = ReadFileOrEmpty(trace_path, &optional_missing);

  const fedmp::obs::analysis::Report report =
      fedmp::obs::analysis::BuildReport(inputs, options);
  for (const std::string& warning : report.warnings) {
    std::fprintf(stderr, "fedmp_report: warning: %s\n", warning.c_str());
  }

  if (out_path.empty()) {
    std::fputs(report.human.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "fedmp_report: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << report.human;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "fedmp_report: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    out << report.json << "\n";
  }
  return 0;
}
