#!/bin/bash
# Runs every bench binary in sequence, teeing the combined output.
#
# --perf-compare: instead of the full suite, run only the hot-path
# baseline-vs-optimized comparison in bench_fig5_round_time at 1/2/4
# threads (with the pool / plan-cache / model-cache counters enabled) and
# merge the speedup records plus counters into BENCH_pr5.json at the repo
# root, stamped with the git sha, an ISO-8601 UTC date, and a host
# fingerprint (hostname + core count).
#
# --gate: run a fresh perf-compare and check it against the committed
# BENCH_baseline.json. Host-independent checks always run:
#   * per-record hot-path speedup must stay within FEDMP_GATE_TOLERANCE
#     (default 0.15, i.e. fresh >= baseline * 0.85);
#   * plan-cache / model-cache hit rates must not drop more than 0.15
#     absolute below the baseline.
# Thread-scaling check (t4-vs-t1 wall-clock of the optimized path) is
# host-aware: on hosts with >= 4 cores the ratio must clear an absolute
# 2.0x floor; on smaller hosts (where 4 lanes cannot physically beat 1) it
# only must not regress relative to the committed baseline's ratio.
# Absolute per-round wall-clock is only compared when the baseline's host
# fingerprint matches this machine. FEDMP_GATE_INJECT=<factor> multiplies
# the fresh optimized wall-clock before comparison (CI uses it to prove the
# gate actually fails on a regression).
#
# --scale: run bench_scale at 10k and 100k workers (separate processes —
# VmHWM is process-lifetime monotonic) and stamp both entries into a
# runs[] array in BENCH_scale.json at the repo root, enforcing per-scale
# peak-RSS ceilings, the participants==workers guard, the 100k sublinear-
# memory and fold-overlap gates, and (same host only) round_seconds against
# the committed entries (see run_scale below). --gate runs the same check
# first, against a throwaway output.
cd "$(dirname "$0")/build" || exit 1

run_perf_compare() {
  # $1: output JSON path (relative to build/).
  echo "### perf-compare: bench/bench_fig5_round_time ###"
  FEDMP_TRACE_METRICS=bench_pr5_metrics.json ./bench/bench_fig5_round_time 2>&1
  exit_code=$?
  echo "### exit=$exit_code ###"
  if [ $exit_code -ne 0 ]; then
    echo "perf-compare bench failed (exit=$exit_code)" >&2
    return $exit_code
  fi
  local sha date host cores
  sha=$(git -C .. rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
  date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
  cores=$(nproc 2>/dev/null || echo 0)
  host="$(hostname 2>/dev/null || echo unknown)-${cores}c"
  python3 - "$1" "$sha" "$date" "$host" "$cores" <<'EOF'
import json
import sys

out_path, sha, date, host, cores = sys.argv[1:6]
with open("fig5_hotpath.json") as f:
    speedup = json.load(f)
with open("bench_pr5_metrics.json") as f:
    metrics = json.load(f)

# Keep only the hot-path cache/pool counters; drop unrelated telemetry.
prefixes = ("nn.pool.", "pruning.plan_cache.", "fl.worker.model_cache.")
counters = {k: v for k, v in sorted(metrics.items())
            if k.startswith(prefixes)}

out = {"bench": "fig5_round_time hot-path compare",
       "git_sha": sha,
       "date": date,
       "host": host,
       "cores": int(cores),
       "speedup": speedup,
       "counters": counters}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote", out_path)
EOF
}

run_scale() {
  # $1: output JSON path (relative to build/). Runs the streaming scale
  # bench once per fleet size in FEDMP_SCALE_RUNS (default "10000 100000"),
  # each as its own process — VmHWM is process-lifetime monotonic, so a
  # second scale in the same process would inherit the first one's peak —
  # and merges the entries into one runs[] document. Per-run gates:
  #   * every worker must have participated (a silent partial round would
  #     make the RSS number meaningless);
  #   * the peak-RSS delta must stay under the per-scale ceiling:
  #     FEDMP_SCALE_RSS_CEILING_MB (default 200, matching
  #     tests/fl/scale_test.cc) below 100k workers,
  #     FEDMP_SCALE_RSS_CEILING_MB_100K (default 400) at 100k+;
  #   * the delta must undercut the naive O(workers x model) estimate by
  #     at least 2x — the bound is the feature;
  #   * the flight-recorder dump must exist and stay a bounded artifact;
  #   * the ledger's bytes_saved_ratio (stamped into the entry) must stay
  #     positive — pruning must still pay at fleet scale.
  # 100k-only gates:
  #   * RSS delta <= 4x the 10k delta (10x the fleet must NOT cost 10x the
  #     memory — the streaming-view + sharded-PS contract);
  #   * shard folds must have run on >= FEDMP_SCALE_MIN_FOLD_LANES
  #     (default 2) distinct pool lanes — the Finish tail really
  #     overlapped.
  # Same-host only (fingerprint match against the committed
  # BENCH_scale.json): round_seconds per scale must stay within
  # FEDMP_GATE_TOLERANCE (default 0.15) of the committed entry.
  # FEDMP_GATE_INJECT=<factor> inflates the measured deltas and round
  # times before the checks (CI uses it to prove the gate fails on a
  # regression).
  local committed="../BENCH_scale.json"
  local run_files=()
  # One malloc arena: per-thread arenas inflate VmHWM by a scheduling-
  # dependent amount (glibc never returns arena pages), which would put
  # multi-MiB noise on the deltas the gates compare across runs and hosts.
  for w in ${FEDMP_SCALE_RUNS:-10000 100000}; do
    echo "### scale: bench/bench_scale (workers=$w) ###"
    MALLOC_ARENA_MAX=1 FEDMP_SCALE_WORKERS=$w ./bench/bench_scale 2>&1
    scale_exit=$?
    echo "### exit=$scale_exit ###"
    if [ $scale_exit -ne 0 ]; then
      echo "scale bench failed at $w workers (exit=$scale_exit)" >&2
      return $scale_exit
    fi
    mv bench_scale.json "bench_scale_${w}.json"
    run_files+=("bench_scale_${w}.json")
  done
  local sha date host cores
  sha=$(git -C .. rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
  date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
  cores=$(nproc 2>/dev/null || echo 0)
  host="$(hostname 2>/dev/null || echo unknown)-${cores}c"
  python3 - "$1" "$sha" "$date" "$host" "$cores" "$committed" \
    "${run_files[@]}" <<'EOF'
import json
import os
import sys

out_path, sha, date, host, cores, committed_path = sys.argv[1:7]
run_paths = sys.argv[7:]
CEILING_MB = float(os.environ.get("FEDMP_SCALE_RSS_CEILING_MB", "200"))
CEILING_MB_100K = float(
    os.environ.get("FEDMP_SCALE_RSS_CEILING_MB_100K", "400"))
MIN_FOLD_LANES = int(os.environ.get("FEDMP_SCALE_MIN_FOLD_LANES", "2"))
TOL = float(os.environ.get("FEDMP_GATE_TOLERANCE", "0.15"))
INJECT = float(os.environ.get("FEDMP_GATE_INJECT", "1.0"))

# The committed document is read BEFORE the output overwrites it (in
# --scale mode they are the same file): it carries the same-host
# round_seconds references. Only new-schema documents (a runs[] array)
# are comparable — flat-schema ones predate the streaming-partition bench
# and measured a different workload, so their times are skipped.
committed_runs, committed_host = {}, None
try:
    with open(committed_path) as f:
        committed = json.load(f)
    committed_host = committed.get("host")
    for run in committed.get("runs", []):
        committed_runs[int(run["workers"])] = run
except (OSError, ValueError):
    pass

runs = []
for path in run_paths:
    with open(path) as f:
        runs.append(json.load(f))
runs.sort(key=lambda r: r["workers"])

if INJECT != 1.0:
    print(f"scale-gate: injected x{INJECT} into peak-RSS deltas and "
          "round times")

failures = []
delta_by_workers = {}
for raw in runs:
    workers = raw["workers"]
    tag = f"{workers}w"
    delta = raw["rss_delta_bytes"] * INJECT
    round_seconds = raw["round_seconds"] * INJECT
    delta_by_workers[workers] = delta

    if raw["participants"] != workers:
        failures.append(f"{tag}: participants {raw['participants']} != "
                        f"workers {workers}")

    # The resource ledger stamps the round's exact wire-byte savings vs the
    # dense FedAvg baseline; pruning that stops paying at fleet scale is a
    # regression, not a tuning choice.
    saved = raw.get("bytes_saved_ratio", 0.0)
    status = "ok" if saved > 0.0 else "FAIL"
    print(f"scale-gate: {tag}: ledger {raw.get('flops_total', 0)} MACs, "
          f"bytes_saved_ratio {saved:.3f} {status}")
    if saved <= 0.0:
        failures.append(f"{tag}: bytes_saved_ratio {saved} <= 0 — the "
                        "pruned round shipped no byte savings vs dense")

    ceiling_mb = CEILING_MB_100K if workers >= 100000 else CEILING_MB
    ceiling = ceiling_mb * (1 << 20)
    raw["rss_ceiling_bytes"] = int(ceiling)
    status = "ok" if delta <= ceiling else "FAIL"
    print(f"scale-gate: {tag}: peak-RSS delta {delta / (1 << 20):.1f} MiB "
          f"(ceiling {ceiling_mb:.0f} MiB) {status}")
    if delta > ceiling:
        failures.append(f"{tag}: peak-RSS delta {delta / (1 << 20):.1f} MiB "
                        f"> ceiling {ceiling_mb:.0f} MiB")

    naive = raw["naive_bytes_estimate"]
    if delta * 2 > naive:
        failures.append(f"{tag}: peak-RSS delta {delta / (1 << 20):.1f} MiB "
                        f"does not undercut the naive estimate "
                        f"{naive / (1 << 20):.1f} MiB by 2x")

    # The bench runs with the flight recorder + trace sampling enabled
    # INSIDE the measured window, so the RSS ceiling above already covers
    # the live observability tier. The dump must exist and stay a bounded
    # artifact (O(ring capacity), never O(workers x rounds)).
    FLIGHT_DUMP_CEILING_MB = 8
    flight_bytes = raw.get("flight_dump_bytes", 0)
    flight_events = raw.get("flight_recorder_events", 0)
    print(f"scale-gate: {tag}: flight recorder {flight_events} events held, "
          f"dump {flight_bytes / 1024:.1f} KiB (ceiling "
          f"{FLIGHT_DUMP_CEILING_MB} MiB)")
    if flight_bytes <= 0:
        failures.append(f"{tag}: flight-recorder dump missing or empty "
                        f"(flight_dump_bytes={flight_bytes})")
    elif flight_bytes > FLIGHT_DUMP_CEILING_MB * (1 << 20):
        failures.append(f"{tag}: flight-recorder dump "
                        f"{flight_bytes / (1 << 20):.1f} MiB > ceiling "
                        f"{FLIGHT_DUMP_CEILING_MB} MiB (not a bounded "
                        "artifact)")

    if workers >= 100000:
        lanes = raw.get("fold_lanes", 0)
        status = "ok" if lanes >= MIN_FOLD_LANES else "FAIL"
        print(f"scale-gate: {tag}: shard folds on {lanes} pool lanes "
              f"(min {MIN_FOLD_LANES}) {status}")
        if lanes < MIN_FOLD_LANES:
            failures.append(f"{tag}: shard folds ran on {lanes} lanes "
                            f"< {MIN_FOLD_LANES} — the Finish tail did "
                            "not overlap")

    # Same-host round-time budget against the committed entry. A missing
    # or foreign-host reference skips the check (first stamp, new machine,
    # schema migration) — memory gates above still ran.
    ref = committed_runs.get(workers)
    if ref is None or committed_host != host:
        print(f"scale-gate: {tag}: no same-host committed round time "
              f"(host={host}, committed={committed_host}); round-time "
              "check skipped")
    else:
        ceil = ref["round_seconds"] * (1.0 + TOL)
        status = "ok" if round_seconds <= ceil else "FAIL"
        print(f"scale-gate: {tag}: round {round_seconds:.2f}s vs committed "
              f"{ref['round_seconds']:.2f}s (ceil {ceil:.2f}s) {status}")
        if round_seconds > ceil:
            failures.append(f"{tag}: round {round_seconds:.2f}s > ceil "
                            f"{ceil:.2f}s")

# Sublinear memory across the decade: 10x the fleet must cost at most 4x
# the peak-RSS delta (both deltas scale by INJECT, so this ratio check is
# injection-invariant by design — the ceilings above catch inflation).
if 10000 in delta_by_workers and 100000 in delta_by_workers:
    small, big = delta_by_workers[10000], delta_by_workers[100000]
    ratio = big / small if small > 0 else float("inf")
    status = "ok" if ratio <= 4.0 else "FAIL"
    print(f"scale-gate: 100k-vs-10k peak-RSS delta ratio {ratio:.2f}x "
          f"(max 4.0x) {status}")
    if ratio > 4.0:
        failures.append(f"100k delta is {ratio:.2f}x the 10k delta "
                        "(max 4.0x) — memory is not sublinear in the fleet")

out = {"bench": "scale-out streaming rounds",
       "git_sha": sha,
       "date": date,
       "host": host,
       "cores": int(cores),
       "runs": runs}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote", out_path)

if failures:
    print("SCALE GATE FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("SCALE GATE PASSED")
EOF
}

if [ "$1" = "--perf-compare" ]; then
  run_perf_compare ../BENCH_pr5.json
  exit $?
fi

if [ "$1" = "--scale" ]; then
  run_scale ../BENCH_scale.json
  exit $?
fi

if [ "$1" = "--gate" ]; then
  run_scale gate_scale.json || exit $?
  run_perf_compare gate_fresh.json || exit $?
  echo "### gate: fresh vs BENCH_baseline.json ###"
  python3 - <<'EOF'
import json
import os
import sys

TOL = float(os.environ.get("FEDMP_GATE_TOLERANCE", "0.15"))
INJECT = float(os.environ.get("FEDMP_GATE_INJECT", "1.0"))

with open("gate_fresh.json") as f:
    fresh = json.load(f)
with open("../BENCH_baseline.json") as f:
    base = json.load(f)

# The injection hook degrades the fresh optimized wall-clock, as a real
# hot-path regression would.
for rec in fresh["speedup"]:
    rec["parallel_seconds"] *= INJECT
    rec["speedup"] = rec["serial_seconds"] / rec["parallel_seconds"]
if INJECT != 1.0:
    print(f"gate: injected x{INJECT} slowdown into fresh optimized times")

failures = []

# 1) Host-independent: per-record hot-path speedup ratio.
base_by_name = {r["name"]: r for r in base["speedup"]}
for rec in fresh["speedup"]:
    ref = base_by_name.get(rec["name"])
    if ref is None:
        print(f"gate: {rec['name']}: no baseline record, skipped")
        continue
    floor = ref["speedup"] * (1.0 - TOL)
    status = "ok" if rec["speedup"] >= floor else "FAIL"
    print(f"gate: {rec['name']}: speedup {rec['speedup']:.3f} "
          f"vs baseline {ref['speedup']:.3f} (floor {floor:.3f}) {status}")
    if rec["speedup"] < floor:
        failures.append(f"{rec['name']} speedup {rec['speedup']:.3f} "
                        f"< floor {floor:.3f}")

# 2) Host-independent: cache hit rates (counters are deterministic for the
# fixed bench workload, so the band only absorbs schema-level drift).
def hit_rate(counters, stem):
    hits = counters.get(stem + ".hits", 0.0)
    misses = counters.get(stem + ".misses", 0.0)
    total = hits + misses
    return hits / total if total > 0 else None

for stem in ("pruning.plan_cache", "fl.worker.model_cache"):
    fr = hit_rate(fresh["counters"], stem)
    br = hit_rate(base["counters"], stem)
    if fr is None or br is None:
        print(f"gate: {stem}: hit rate unavailable, skipped")
        continue
    floor = br - 0.15
    status = "ok" if fr >= floor else "FAIL"
    print(f"gate: {stem}: hit rate {fr:.3f} vs baseline {br:.3f} "
          f"(floor {floor:.3f}) {status}")
    if fr < floor:
        failures.append(f"{stem} hit rate {fr:.3f} < floor {floor:.3f}")

# 3) Thread scaling of the optimized path: t1 wall-clock / t4 wall-clock.
# Host-aware: a >= 4-core machine must clear an absolute 2.0x floor (the
# pipelined executor's contract); a smaller host cannot physically scale,
# so it only must not regress relative to the baseline's measured ratio.
def scaling_ratio(doc):
    by_name = {r["name"]: r for r in doc.get("speedup", [])}
    t1 = by_name.get("fedmp_hotpath_t1")
    t4 = by_name.get("fedmp_hotpath_t4")
    if t1 is None or t4 is None or t4["parallel_seconds"] <= 0:
        return None
    return t1["parallel_seconds"] / t4["parallel_seconds"]

fresh_scaling = scaling_ratio(fresh)
if fresh_scaling is None:
    print("gate: scaling: t1/t4 records unavailable, skipped")
else:
    fresh_cores = int(fresh.get("cores", 0))
    if fresh_cores >= 4:
        floor = 2.0
        status = "ok" if fresh_scaling >= floor else "FAIL"
        print(f"gate: scaling: t4-vs-t1 {fresh_scaling:.3f}x "
              f"(absolute floor {floor:.1f}x, cores={fresh_cores}) {status}")
        if fresh_scaling < floor:
            failures.append(f"t4-vs-t1 scaling {fresh_scaling:.3f}x "
                            f"< absolute floor {floor:.1f}x")
    else:
        base_scaling = scaling_ratio(base)
        if base_scaling is None:
            print(f"gate: scaling: {fresh_scaling:.3f}x on {fresh_cores}-core "
                  "host, no baseline ratio, skipped")
        else:
            floor = base_scaling * (1.0 - TOL)
            status = "ok" if fresh_scaling >= floor else "FAIL"
            print(f"gate: scaling: t4-vs-t1 {fresh_scaling:.3f}x vs baseline "
                  f"{base_scaling:.3f}x (floor {floor:.3f}x, "
                  f"cores={fresh_cores}) {status}")
            if fresh_scaling < floor:
                failures.append(f"t4-vs-t1 scaling {fresh_scaling:.3f}x "
                                f"< floor {floor:.3f}x")

# 4) Host-dependent: absolute optimized wall-clock, only when the baseline
# was recorded on a machine with the same fingerprint.
if fresh.get("host") == base.get("host"):
    for rec in fresh["speedup"]:
        ref = base_by_name.get(rec["name"])
        if ref is None:
            continue
        ceil = ref["parallel_seconds"] * (1.0 + TOL)
        status = "ok" if rec["parallel_seconds"] <= ceil else "FAIL"
        print(f"gate: {rec['name']}: optimized {rec['parallel_seconds']:.2f}s "
              f"vs baseline {ref['parallel_seconds']:.2f}s "
              f"(ceil {ceil:.2f}s) {status}")
        if rec["parallel_seconds"] > ceil:
            failures.append(f"{rec['name']} wall-clock "
                            f"{rec['parallel_seconds']:.2f}s > ceil {ceil:.2f}s")
else:
    print(f"gate: host fingerprint differs "
          f"(fresh={fresh.get('host')}, baseline={base.get('host')}); "
          "absolute wall-clock checks skipped")

if failures:
    print("GATE FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("GATE PASSED")
EOF
  exit $?
fi

# Telemetry overhead gate: enabled-vs-disabled runtime on the microbench
# workload must stay within the 3% budget (DESIGN.md "Observability"), and
# the resource ledger's instrumented MAC-count mode (FEDMP_LEDGER_CHECK)
# within 1% (DESIGN.md "Resource accounting"). The binary exits non-zero
# past either budget; surface that loudly.
echo "### bench/bench_obs_overhead ###"
./bench/bench_obs_overhead 2>&1
obs_exit=$?
echo "### exit=$obs_exit ###"
if [ $obs_exit -ne 0 ]; then
  echo "OBSERVABILITY OVERHEAD BUDGET EXCEEDED (bench_obs_overhead exit=$obs_exit)" >&2
fi

for b in bench/bench_fig5_round_time bench/bench_fig11_overhead \
         bench/bench_fig2_ratio_accuracy bench/bench_ablation_reward \
         bench/bench_ablation_discount bench/bench_table4_lstm \
         bench/bench_fig7_r2sp_vs_bsp bench/bench_fig12_async \
         bench/bench_fig4_theta bench/bench_table3_fig6_methods \
         bench/bench_fig8_heterogeneity bench/bench_fig9_noniid \
         bench/bench_fig10_scalability bench/bench_scale \
         bench/bench_nn_microbench; do
  echo; echo "### $b ###"; ./$b 2>&1; echo "### exit=$? ###"
done
