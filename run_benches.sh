#!/bin/bash
# Runs every bench binary in sequence, teeing the combined output.
cd /root/repo/build

# Telemetry overhead gate: enabled-vs-disabled runtime on the microbench
# workload must stay within the 3% budget (DESIGN.md "Observability").
# The binary exits non-zero past the budget; surface that loudly.
echo "### bench/bench_obs_overhead ###"
./bench/bench_obs_overhead 2>&1
obs_exit=$?
echo "### exit=$obs_exit ###"
if [ $obs_exit -ne 0 ]; then
  echo "TELEMETRY OVERHEAD BUDGET EXCEEDED (bench_obs_overhead exit=$obs_exit)" >&2
fi

for b in bench/bench_fig5_round_time bench/bench_fig11_overhead \
         bench/bench_fig2_ratio_accuracy bench/bench_ablation_reward \
         bench/bench_ablation_discount bench/bench_table4_lstm \
         bench/bench_fig7_r2sp_vs_bsp bench/bench_fig12_async \
         bench/bench_fig4_theta bench/bench_table3_fig6_methods \
         bench/bench_fig8_heterogeneity bench/bench_fig9_noniid \
         bench/bench_fig10_scalability bench/bench_nn_microbench; do
  echo; echo "### $b ###"; ./$b 2>&1; echo "### exit=$? ###"
done
