#!/bin/bash
# Runs every bench binary in sequence, teeing the combined output.
#
# --perf-compare: instead of the full suite, run only the hot-path
# baseline-vs-optimized comparison in bench_fig5_round_time (with the
# pool / plan-cache / model-cache counters enabled) and merge the speedup
# record plus counters into BENCH_pr4.json at the repo root.
cd /root/repo/build

if [ "$1" = "--perf-compare" ]; then
  echo "### perf-compare: bench/bench_fig5_round_time ###"
  FEDMP_TRACE_METRICS=bench_pr4_metrics.json ./bench/bench_fig5_round_time 2>&1
  exit_code=$?
  echo "### exit=$exit_code ###"
  if [ $exit_code -ne 0 ]; then
    echo "perf-compare bench failed (exit=$exit_code)" >&2
    exit $exit_code
  fi
  python3 - <<'EOF'
import json

with open("fig5_hotpath.json") as f:
    speedup = json.load(f)
with open("bench_pr4_metrics.json") as f:
    metrics = json.load(f)

# Keep only the hot-path cache/pool counters; drop unrelated telemetry.
prefixes = ("nn.pool.", "pruning.plan_cache.", "fl.worker.model_cache.")
counters = {k: v for k, v in sorted(metrics.items())
            if k.startswith(prefixes)}

out = {"bench": "fig5_round_time hot-path compare",
       "speedup": speedup,
       "counters": counters}
with open("../BENCH_pr4.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr4.json")
EOF
  exit $?
fi

# Telemetry overhead gate: enabled-vs-disabled runtime on the microbench
# workload must stay within the 3% budget (DESIGN.md "Observability").
# The binary exits non-zero past the budget; surface that loudly.
echo "### bench/bench_obs_overhead ###"
./bench/bench_obs_overhead 2>&1
obs_exit=$?
echo "### exit=$obs_exit ###"
if [ $obs_exit -ne 0 ]; then
  echo "TELEMETRY OVERHEAD BUDGET EXCEEDED (bench_obs_overhead exit=$obs_exit)" >&2
fi

for b in bench/bench_fig5_round_time bench/bench_fig11_overhead \
         bench/bench_fig2_ratio_accuracy bench/bench_ablation_reward \
         bench/bench_ablation_discount bench/bench_table4_lstm \
         bench/bench_fig7_r2sp_vs_bsp bench/bench_fig12_async \
         bench/bench_fig4_theta bench/bench_table3_fig6_methods \
         bench/bench_fig8_heterogeneity bench/bench_fig9_noniid \
         bench/bench_fig10_scalability bench/bench_nn_microbench; do
  echo; echo "### $b ###"; ./$b 2>&1; echo "### exit=$? ###"
done
